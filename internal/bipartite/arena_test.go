package bipartite

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func arenaTestGraph(seed int64, nu, nm, edges int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilderSized(nu, nm, edges)
	for i := 0; i < edges; i++ {
		b.AddEdge(uint32(rng.Intn(nu)), uint32(rng.Intn(nm)))
	}
	return b.Build()
}

// sameSubgraph asserts structural equality: CSR contents, validity, and
// parent id maps.
func sameSubgraph(t *testing.T, tag string, got, want *Subgraph) {
	t.Helper()
	if err := got.Validate(); err != nil {
		t.Fatalf("%s: invalid subgraph: %v", tag, err)
	}
	if got.NumUsers() != want.NumUsers() || got.NumMerchants() != want.NumMerchants() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: shape (%d,%d,%d) != (%d,%d,%d)", tag,
			got.NumUsers(), got.NumMerchants(), got.NumEdges(),
			want.NumUsers(), want.NumMerchants(), want.NumEdges())
	}
	if !reflect.DeepEqual(got.EdgeList(), want.EdgeList()) {
		t.Errorf("%s: edge lists differ", tag)
	}
	if !reflect.DeepEqual(append([]uint32{}, got.UserIDs...), append([]uint32{}, want.UserIDs...)) {
		t.Errorf("%s: user id maps differ: %v vs %v", tag, got.UserIDs, want.UserIDs)
	}
	if !reflect.DeepEqual(append([]uint32{}, got.MerchantIDs...), append([]uint32{}, want.MerchantIDs...)) {
		t.Errorf("%s: merchant id maps differ: %v vs %v", tag, got.MerchantIDs, want.MerchantIDs)
	}
}

// TestArenaBuildsMatchAllocatingBuilds reuses ONE arena across every build
// variant and graph shape (including shrink-then-grow) and checks each
// result against a fresh allocating build. Identical outputs here are what
// let the ensemble swap the arena path in without changing votes.
func TestArenaBuildsMatchAllocatingBuilds(t *testing.T) {
	a := NewArena()
	for _, shape := range []struct{ nu, nm, e int }{
		{60, 50, 400},
		{8, 6, 20}, // shrink
		{200, 150, 1500},
		{25, 80, 300},
	} {
		g := arenaTestGraph(int64(shape.nu), shape.nu, shape.nm, shape.e)
		rng := rand.New(rand.NewSource(99))

		var edges []Edge
		g.Edges(func(e Edge) bool {
			if rng.Intn(3) == 0 {
				edges = append(edges, e)
			}
			return true
		})
		// Duplicate a few edges: InducedByEdges documents merging.
		if len(edges) > 2 {
			edges = append(edges, edges[0], edges[1])
		}
		sameSubgraph(t, "edges", g.InducedByEdgesArena(a, edges), g.InducedByEdges(edges))

		var users, merchants []uint32
		for u := 0; u < g.NumUsers(); u++ {
			if rng.Intn(2) == 0 {
				users = append(users, uint32(u))
			}
		}
		for v := 0; v < g.NumMerchants(); v++ {
			if rng.Intn(2) == 0 {
				merchants = append(merchants, uint32(v))
			}
		}
		// Duplicate ids: documented as ignored.
		if len(users) > 0 {
			users = append(users, users[0])
		}
		sameSubgraph(t, "users", g.InducedByUsersArena(a, users), g.InducedByUsers(users))
		sameSubgraph(t, "merchants", g.InducedByMerchantsArena(a, merchants), g.InducedByMerchants(merchants))
		sameSubgraph(t, "both", g.InducedByBothArena(a, users, merchants), g.InducedByBoth(users, merchants))
	}
}

// TestInducedByEdgeIDsArena checks the RES fast path: a sorted canonical
// edge-id list must produce the same subgraph as materializing those edges
// and calling InducedByEdges.
func TestInducedByEdgeIDsArena(t *testing.T) {
	g := arenaTestGraph(7, 80, 70, 600)
	rng := rand.New(rand.NewSource(3))
	a := NewArena()
	for trial := 0; trial < 5; trial++ {
		var ids []int
		for i := 0; i < g.NumEdges(); i++ {
			if rng.Intn(4) == 0 {
				ids = append(ids, i)
			}
		}
		sort.Ints(ids)
		edges := make([]Edge, len(ids))
		for i, id := range ids {
			edges[i] = g.EdgeAt(id)
		}
		sameSubgraph(t, "edge-ids", g.InducedByEdgeIDsArena(a, ids), g.InducedByEdges(edges))
	}
	// Empty draw on a warm arena must yield an empty subgraph.
	sg := g.InducedByEdgeIDsArena(a, nil)
	if sg.NumUsers() != 0 || sg.NumMerchants() != 0 || sg.NumEdges() != 0 {
		t.Errorf("empty id list produced %v", sg)
	}
}

// TestArenaAcrossParents verifies one arena can serve different parent
// graphs back to back — the serving engine's pool reuses arenas across
// stream versions of very different sizes.
func TestArenaAcrossParents(t *testing.T) {
	a := NewArena()
	big := arenaTestGraph(1, 300, 250, 2000)
	small := arenaTestGraph(2, 12, 9, 40)
	for i := 0; i < 3; i++ {
		for _, g := range []*Graph{big, small} {
			users := []uint32{0, 1, 2, 3}
			sameSubgraph(t, "alternating", g.InducedByUsersArena(a, users), g.InducedByUsers(users))
		}
	}
	a.Reset()
	sameSubgraph(t, "post-reset", big.InducedByUsersArena(a, []uint32{5}), big.InducedByUsers([]uint32{5}))
}
