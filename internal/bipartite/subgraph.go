package bipartite

import "ensemfdet/internal/scratch"

// Subgraph is a Graph extracted from a parent graph together with the maps
// from its dense local ids back to the parent's ids. Samplers produce
// Subgraphs; the ensemble layer uses the id maps to cast votes in the parent
// id space (paper Alg. 2 lines 5-7).
type Subgraph struct {
	*Graph
	// UserIDs[localUser] is the parent user id of local user node localUser.
	UserIDs []uint32
	// MerchantIDs[localMerchant] is the parent merchant id of local merchant
	// node localMerchant.
	MerchantIDs []uint32
}

// ParentUser maps a local user id to the parent user id.
func (s *Subgraph) ParentUser(u uint32) uint32 { return s.UserIDs[u] }

// ParentMerchant maps a local merchant id to the parent merchant id.
func (s *Subgraph) ParentMerchant(v uint32) uint32 { return s.MerchantIDs[v] }

// Detach returns a deep copy of s that shares no memory with the arena it
// was built in. The one-shot induced-subgraph builders return detached
// copies so a retained subgraph pins only its own CSR and id maps — not the
// throwaway arena's parent-sized remapper tables.
func (s *Subgraph) Detach() *Subgraph {
	return &Subgraph{
		Graph: &Graph{
			userOff:  append([]int(nil), s.userOff...),
			userAdj:  append([]uint32(nil), s.userAdj...),
			merchOff: append([]int(nil), s.merchOff...),
			merchAdj: append([]uint32(nil), s.merchAdj...),
		},
		UserIDs:     append([]uint32(nil), s.UserIDs...),
		MerchantIDs: append([]uint32(nil), s.MerchantIDs...),
	}
}

// idRemapper assigns dense local ids to a sparse subset of a parent id space
// in first-seen order. It is slice-backed (parent side sizes are known and
// modest) because the ensemble builds thousands of subgraphs per run and map
// overhead dominated profiles. Reuse is epoch-stamped: reset bumps a
// generation counter instead of re-filling a parent-sized sentinel array, so
// a recycled remapper costs O(1) per sample rather than O(parent).
type idRemapper struct {
	stamp scratch.Stamps
	local []int32 // parent id -> local id, valid only when stamped
	ids   []uint32
}

func (r *idRemapper) reset(parentSize int) {
	r.stamp.Reset(parentSize)
	scratch.Grow(&r.local, parentSize)
	r.ids = r.ids[:0]
}

func (r *idRemapper) get(parent uint32) uint32 {
	if r.stamp.Has(int(parent)) {
		return uint32(r.local[parent])
	}
	r.stamp.Add(int(parent))
	l := int32(len(r.ids))
	r.local[parent] = l
	r.ids = append(r.ids, parent)
	return uint32(l)
}

func (r *idRemapper) seen(parent uint32) bool { return r.stamp.Has(int(parent)) }

// InducedByEdges builds the subgraph made of exactly the given parent edges:
// both endpoints of every edge are included and no extra edges are added
// (paper §IV-A1, edge sampling semantics). Duplicate edges are merged.
//
// Each call allocates; the ensemble hot path uses InducedByEdgesArena.
func (g *Graph) InducedByEdges(edges []Edge) *Subgraph {
	return g.InducedByEdgesArena(NewArena(), edges).Detach()
}

// InducedByUsers builds the subgraph on the selected user rows of the
// adjacency matrix W: the selected users keep *all* their edges, and exactly
// the merchants touched by those edges appear (paper §IV-A3, one-side node
// sampling of U). Duplicate user ids are ignored.
func (g *Graph) InducedByUsers(userIDs []uint32) *Subgraph {
	return g.InducedByUsersArena(NewArena(), userIDs).Detach()
}

// InducedByMerchants is the merchant-side analogue of InducedByUsers
// (one-side node sampling of V).
func (g *Graph) InducedByMerchants(merchantIDs []uint32) *Subgraph {
	return g.InducedByMerchantsArena(NewArena(), merchantIDs).Detach()
}

// InducedByBoth builds the cross-section subgraph of the selected rows and
// columns of W: an edge survives iff both its endpoints were selected (paper
// §IV-A4, two-side node sampling). Nodes left isolated by the cross-section
// are dropped so the subgraph stays dense in ids.
func (g *Graph) InducedByBoth(userIDs, merchantIDs []uint32) *Subgraph {
	return g.InducedByBothArena(NewArena(), userIDs, merchantIDs).Detach()
}

// Whole wraps g as a Subgraph whose id maps are the identity. It lets callers
// run subgraph-oriented pipelines (FDET, voting) directly on the full graph.
func (g *Graph) Whole() *Subgraph {
	uids := make([]uint32, g.NumUsers())
	for i := range uids {
		uids[i] = uint32(i)
	}
	mids := make([]uint32, g.NumMerchants())
	for i := range mids {
		mids[i] = uint32(i)
	}
	return &Subgraph{Graph: g, UserIDs: uids, MerchantIDs: mids}
}
