package bipartite

// Subgraph is a Graph extracted from a parent graph together with the maps
// from its dense local ids back to the parent's ids. Samplers produce
// Subgraphs; the ensemble layer uses the id maps to cast votes in the parent
// id space (paper Alg. 2 lines 5-7).
type Subgraph struct {
	*Graph
	// UserIDs[localUser] is the parent user id of local user node localUser.
	UserIDs []uint32
	// MerchantIDs[localMerchant] is the parent merchant id of local merchant
	// node localMerchant.
	MerchantIDs []uint32
}

// ParentUser maps a local user id to the parent user id.
func (s *Subgraph) ParentUser(u uint32) uint32 { return s.UserIDs[u] }

// ParentMerchant maps a local merchant id to the parent merchant id.
func (s *Subgraph) ParentMerchant(v uint32) uint32 { return s.MerchantIDs[v] }

// idRemapper assigns dense local ids to a sparse subset of a parent id space
// in first-seen order. It is slice-backed (parent side sizes are known and
// modest) because the ensemble builds thousands of subgraphs per run and map
// overhead dominated profiles.
type idRemapper struct {
	local []int32 // parent id -> local id, -1 when unassigned
	ids   []uint32
}

const unassigned = int32(-1)

func newIDRemapper(parentSize int) *idRemapper {
	r := &idRemapper{local: make([]int32, parentSize)}
	for i := range r.local {
		r.local[i] = unassigned
	}
	return r
}

func (r *idRemapper) get(parent uint32) uint32 {
	if l := r.local[parent]; l != unassigned {
		return uint32(l)
	}
	l := int32(len(r.ids))
	r.local[parent] = l
	r.ids = append(r.ids, parent)
	return uint32(l)
}

func (r *idRemapper) seen(parent uint32) bool { return r.local[parent] != unassigned }

// InducedByEdges builds the subgraph made of exactly the given parent edges:
// both endpoints of every edge are included and no extra edges are added
// (paper §IV-A1, edge sampling semantics). Duplicate edges are merged.
func (g *Graph) InducedByEdges(edges []Edge) *Subgraph {
	users := newIDRemapper(g.NumUsers())
	merchants := newIDRemapper(g.NumMerchants())
	local := make([]Edge, len(edges))
	for i, e := range edges {
		local[i] = Edge{U: users.get(e.U), V: merchants.get(e.V)}
	}
	return &Subgraph{
		Graph:       buildFromEdges(len(users.ids), len(merchants.ids), local),
		UserIDs:     users.ids,
		MerchantIDs: merchants.ids,
	}
}

// InducedByUsers builds the subgraph on the selected user rows of the
// adjacency matrix W: the selected users keep *all* their edges, and exactly
// the merchants touched by those edges appear (paper §IV-A3, one-side node
// sampling of U). Duplicate user ids are ignored.
func (g *Graph) InducedByUsers(userIDs []uint32) *Subgraph {
	users := newIDRemapper(g.NumUsers())
	merchants := newIDRemapper(g.NumMerchants())
	var local []Edge
	for _, pu := range userIDs {
		if users.seen(pu) {
			continue
		}
		lu := users.get(pu)
		for _, pv := range g.UserNeighbors(pu) {
			local = append(local, Edge{U: lu, V: merchants.get(pv)})
		}
	}
	return &Subgraph{
		Graph:       buildFromEdges(len(users.ids), len(merchants.ids), local),
		UserIDs:     users.ids,
		MerchantIDs: merchants.ids,
	}
}

// InducedByMerchants is the merchant-side analogue of InducedByUsers
// (one-side node sampling of V).
func (g *Graph) InducedByMerchants(merchantIDs []uint32) *Subgraph {
	users := newIDRemapper(g.NumUsers())
	merchants := newIDRemapper(g.NumMerchants())
	var local []Edge
	for _, pv := range merchantIDs {
		if merchants.seen(pv) {
			continue
		}
		lv := merchants.get(pv)
		for _, pu := range g.MerchantNeighbors(pv) {
			local = append(local, Edge{U: users.get(pu), V: lv})
		}
	}
	return &Subgraph{
		Graph:       buildFromEdges(len(users.ids), len(merchants.ids), local),
		UserIDs:     users.ids,
		MerchantIDs: merchants.ids,
	}
}

// InducedByBoth builds the cross-section subgraph of the selected rows and
// columns of W: an edge survives iff both its endpoints were selected (paper
// §IV-A4, two-side node sampling). Nodes left isolated by the cross-section
// are dropped so the subgraph stays dense in ids.
func (g *Graph) InducedByBoth(userIDs, merchantIDs []uint32) *Subgraph {
	keepMerchant := make([]bool, g.NumMerchants())
	for _, v := range merchantIDs {
		keepMerchant[v] = true
	}
	users := newIDRemapper(g.NumUsers())
	merchants := newIDRemapper(g.NumMerchants())
	var local []Edge
	seenUser := make([]bool, g.NumUsers())
	for _, pu := range userIDs {
		if seenUser[pu] {
			continue
		}
		seenUser[pu] = true
		for _, pv := range g.UserNeighbors(pu) {
			if keepMerchant[pv] {
				local = append(local, Edge{U: users.get(pu), V: merchants.get(pv)})
			}
		}
	}
	return &Subgraph{
		Graph:       buildFromEdges(len(users.ids), len(merchants.ids), local),
		UserIDs:     users.ids,
		MerchantIDs: merchants.ids,
	}
}

// Whole wraps g as a Subgraph whose id maps are the identity. It lets callers
// run subgraph-oriented pipelines (FDET, voting) directly on the full graph.
func (g *Graph) Whole() *Subgraph {
	uids := make([]uint32, g.NumUsers())
	for i := range uids {
		uids[i] = uint32(i)
	}
	mids := make([]uint32, g.NumMerchants())
	for i := range mids {
		mids[i] = uint32(i)
	}
	return &Subgraph{Graph: g, UserIDs: uids, MerchantIDs: mids}
}
