package bipartite

import "sort"

// Side selects one of the two node types of a bipartite graph.
type Side int

const (
	// UserSide selects the user (PIN) nodes.
	UserSide Side = iota
	// MerchantSide selects the merchant nodes.
	MerchantSide
)

// String implements fmt.Stringer.
func (s Side) String() string {
	switch s {
	case UserSide:
		return "user"
	case MerchantSide:
		return "merchant"
	default:
		return "invalid-side"
	}
}

// Other returns the opposite side.
func (s Side) Other() Side {
	if s == UserSide {
		return MerchantSide
	}
	return UserSide
}

// NumNodesOn returns the number of nodes on the given side.
func (g *Graph) NumNodesOn(side Side) int {
	if side == UserSide {
		return g.NumUsers()
	}
	return g.NumMerchants()
}

// Degree returns the degree of node id on the given side.
func (g *Graph) Degree(side Side, id uint32) int {
	if side == UserSide {
		return g.UserDegree(id)
	}
	return g.MerchantDegree(id)
}

// AvgDegree returns the average degree of the given side, 0 for an empty side.
// The paper's ONS side-selection rule (§IV-A3 "Retain topology") compares
// Davg(V) against Davg(U).
func (g *Graph) AvgDegree(side Side) float64 {
	n := g.NumNodesOn(side)
	if n == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(n)
}

// DegreeHistogram returns fD, the count of nodes with each degree on the
// given side: hist[q] is the number of nodes of degree q. Used by the
// sampling-theory helpers for Eq. 3.
func (g *Graph) DegreeHistogram(side Side) []int {
	n := g.NumNodesOn(side)
	maxDeg := 0
	for i := 0; i < n; i++ {
		if d := g.Degree(side, uint32(i)); d > maxDeg {
			maxDeg = d
		}
	}
	hist := make([]int, maxDeg+1)
	for i := 0; i < n; i++ {
		hist[g.Degree(side, uint32(i))]++
	}
	return hist
}

// MaxDegree returns the maximum degree on the given side, 0 for an empty side.
func (g *Graph) MaxDegree(side Side) int {
	maxDeg := 0
	for i := 0; i < g.NumNodesOn(side); i++ {
		if d := g.Degree(side, uint32(i)); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// DegreeQuantile returns the q-quantile (0 ≤ q ≤ 1) of the degree
// distribution on the given side, using the nearest-rank method.
func (g *Graph) DegreeQuantile(side Side, q float64) int {
	n := g.NumNodesOn(side)
	if n == 0 {
		return 0
	}
	degs := make([]int, n)
	for i := 0; i < n; i++ {
		degs[i] = g.Degree(side, uint32(i))
	}
	sort.Ints(degs)
	idx := int(q*float64(n-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return degs[idx]
}

// Stats is a compact statistical summary of a graph, in the shape of the
// paper's Table I rows.
type Stats struct {
	Users            int
	Merchants        int
	Edges            int
	AvgUserDegree    float64
	AvgMerchDegree   float64
	MaxUserDegree    int
	MaxMerchDegree   int
	IsolatedUsers    int // degree-0 users
	IsolatedMerchant int // degree-0 merchants
}

// Summarize computes Stats for g.
func Summarize(g *Graph) Stats {
	s := Stats{
		Users:          g.NumUsers(),
		Merchants:      g.NumMerchants(),
		Edges:          g.NumEdges(),
		AvgUserDegree:  g.AvgDegree(UserSide),
		AvgMerchDegree: g.AvgDegree(MerchantSide),
		MaxUserDegree:  g.MaxDegree(UserSide),
		MaxMerchDegree: g.MaxDegree(MerchantSide),
	}
	for u := 0; u < g.NumUsers(); u++ {
		if g.UserDegree(uint32(u)) == 0 {
			s.IsolatedUsers++
		}
	}
	for v := 0; v < g.NumMerchants(); v++ {
		if g.MerchantDegree(uint32(v)) == 0 {
			s.IsolatedMerchant++
		}
	}
	return s
}
