// Package bipartite implements the "who buy-from where" bipartite graph
// substrate used throughout the repository (paper §III-A, Definition 1).
//
// A Graph stores an undirected bipartite graph G = (U ∪ V, E) between a user
// (PIN) side and a merchant side in compressed sparse row form, in both
// directions, so that peeling algorithms and samplers can walk adjacency in
// O(degree) from either side. Node identifiers are dense uint32 indices local
// to their side: user u ∈ [0, NumUsers), merchant v ∈ [0, NumMerchants).
package bipartite

import (
	"errors"
	"fmt"
	"sort"
)

// Edge is a single purchase connecting user U to merchant V.
type Edge struct {
	U uint32 // user (PIN) id
	V uint32 // merchant id
}

// Graph is an immutable bipartite graph in dual-CSR form. Build one with a
// Builder or one of the reader functions in io.go. The zero value is an empty
// graph.
type Graph struct {
	userOff  []int    // len NumUsers+1; userAdj[userOff[u]:userOff[u+1]] are u's merchants
	userAdj  []uint32 // merchant ids, sorted within each user's range
	merchOff []int    // len NumMerchants+1
	merchAdj []uint32 // user ids, sorted within each merchant's range
}

// NumUsers returns |U|, the number of user (PIN) nodes.
func (g *Graph) NumUsers() int {
	if len(g.userOff) == 0 {
		return 0
	}
	return len(g.userOff) - 1
}

// NumMerchants returns |V|, the number of merchant nodes.
func (g *Graph) NumMerchants() int {
	if len(g.merchOff) == 0 {
		return 0
	}
	return len(g.merchOff) - 1
}

// NumNodes returns |U| + |V|.
func (g *Graph) NumNodes() int { return g.NumUsers() + g.NumMerchants() }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.userAdj) }

// UserDegree returns the degree of user u.
func (g *Graph) UserDegree(u uint32) int { return g.userOff[u+1] - g.userOff[u] }

// MerchantDegree returns the degree of merchant v.
func (g *Graph) MerchantDegree(v uint32) int { return g.merchOff[v+1] - g.merchOff[v] }

// UserNeighbors returns the merchants adjacent to user u as a shared slice.
// The caller must not modify the returned slice.
func (g *Graph) UserNeighbors(u uint32) []uint32 {
	return g.userAdj[g.userOff[u]:g.userOff[u+1]]
}

// MerchantNeighbors returns the users adjacent to merchant v as a shared
// slice. The caller must not modify the returned slice.
func (g *Graph) MerchantNeighbors(v uint32) []uint32 {
	return g.merchAdj[g.merchOff[v]:g.merchOff[v+1]]
}

// HasEdge reports whether the edge (u, v) is present. O(log degree(u)).
func (g *Graph) HasEdge(u, v uint32) bool {
	adj := g.UserNeighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// Edges calls fn for every edge in user-major order. It stops early if fn
// returns false.
func (g *Graph) Edges(fn func(e Edge) bool) {
	for u := 0; u < g.NumUsers(); u++ {
		for _, v := range g.UserNeighbors(uint32(u)) {
			if !fn(Edge{U: uint32(u), V: v}) {
				return
			}
		}
	}
}

// EdgeList materializes every edge in user-major order.
func (g *Graph) EdgeList() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	g.Edges(func(e Edge) bool {
		out = append(out, e)
		return true
	})
	return out
}

// EdgeAt returns the i-th edge in user-major order, 0 ≤ i < NumEdges.
// O(log |U|) per call; samplers that draw many random edges should prefer
// EdgeList or the sampling package's reservoir helpers.
func (g *Graph) EdgeAt(i int) Edge {
	u := sort.Search(len(g.userOff)-1, func(u int) bool { return g.userOff[u+1] > i })
	return Edge{U: uint32(u), V: g.userAdj[i]}
}

// UserRowRange returns the half-open range [start, end) of user u's
// positions in the user-major adjacency array. Position i within the range
// denotes the edge (u, UserAdjAt(i)); i is the edge's canonical id.
func (g *Graph) UserRowRange(u uint32) (start, end int) {
	return g.userOff[u], g.userOff[u+1]
}

// UserAdjAt returns the merchant stored at user-major position i.
func (g *Graph) UserAdjAt(i int) uint32 { return g.userAdj[i] }

// MerchantRowRange returns the half-open range [start, end) of merchant v's
// positions in the merchant-major adjacency array.
func (g *Graph) MerchantRowRange(v uint32) (start, end int) {
	return g.merchOff[v], g.merchOff[v+1]
}

// MerchantAdjAt returns the user stored at merchant-major position p.
func (g *Graph) MerchantAdjAt(p int) uint32 { return g.merchAdj[p] }

// String implements fmt.Stringer with a compact summary.
func (g *Graph) String() string {
	return fmt.Sprintf("bipartite.Graph{users: %d, merchants: %d, edges: %d}",
		g.NumUsers(), g.NumMerchants(), g.NumEdges())
}

// Validate checks internal CSR invariants. It is used by tests and by readers
// of untrusted on-disk graphs; a nil error guarantees all accessor methods are
// panic-free for in-range ids.
func (g *Graph) Validate() error {
	if err := validateCSR(g.userOff, g.userAdj, g.NumMerchants(), "user"); err != nil {
		return err
	}
	if err := validateCSR(g.merchOff, g.merchAdj, g.NumUsers(), "merchant"); err != nil {
		return err
	}
	if len(g.userAdj) != len(g.merchAdj) {
		return fmt.Errorf("bipartite: edge count mismatch: %d user-side vs %d merchant-side",
			len(g.userAdj), len(g.merchAdj))
	}
	return nil
}

func validateCSR(off []int, adj []uint32, otherSide int, name string) error {
	if len(off) == 0 {
		if len(adj) != 0 {
			return fmt.Errorf("bipartite: %s side has adjacency but no offsets", name)
		}
		return nil
	}
	if off[0] != 0 {
		return fmt.Errorf("bipartite: %s offsets must start at 0, got %d", name, off[0])
	}
	if off[len(off)-1] != len(adj) {
		return fmt.Errorf("bipartite: %s offsets end at %d, want %d", name, off[len(off)-1], len(adj))
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("bipartite: %s offsets decrease at %d", name, i)
		}
		row := adj[off[i-1]:off[i]]
		for j := 1; j < len(row); j++ {
			if row[j] <= row[j-1] {
				return fmt.Errorf("bipartite: %s row %d is not strictly sorted", name, i-1)
			}
		}
	}
	for _, id := range adj {
		if int(id) >= otherSide {
			return fmt.Errorf("bipartite: %s adjacency id %d out of range [0,%d)", name, id, otherSide)
		}
	}
	return nil
}

// Builder accumulates edges and produces an immutable Graph. Duplicate edges
// are merged (the graph is simple). Node counts may be declared up front via
// NewBuilderSized or inferred from the largest id seen.
type Builder struct {
	numUsers     int
	numMerchants int
	edges        []Edge
}

// NewBuilder returns a Builder that infers side sizes from the edges added.
func NewBuilder() *Builder { return &Builder{} }

// NewBuilderSized returns a Builder for a graph with the given side sizes.
// Ids beyond the declared sizes grow the sides.
func NewBuilderSized(numUsers, numMerchants, edgeHint int) *Builder {
	return &Builder{
		numUsers:     numUsers,
		numMerchants: numMerchants,
		edges:        make([]Edge, 0, edgeHint),
	}
}

// AddEdge records a purchase (u, v).
func (b *Builder) AddEdge(u, v uint32) {
	if int(u) >= b.numUsers {
		b.numUsers = int(u) + 1
	}
	if int(v) >= b.numMerchants {
		b.numMerchants = int(v) + 1
	}
	b.edges = append(b.edges, Edge{U: u, V: v})
}

// AddEdges records a batch of purchases.
func (b *Builder) AddEdges(edges []Edge) {
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
}

// NumPendingEdges returns the number of edges added so far, before
// deduplication.
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build constructs the immutable Graph. The Builder may be reused afterwards;
// its accumulated edges are consumed.
func (b *Builder) Build() *Graph {
	g := buildFromEdges(b.numUsers, b.numMerchants, b.edges)
	b.edges = nil
	return g
}

// FromEdges constructs a Graph directly from an edge list with declared side
// sizes. It returns an error if any edge id is out of range.
func FromEdges(numUsers, numMerchants int, edges []Edge) (*Graph, error) {
	for _, e := range edges {
		if int(e.U) >= numUsers {
			return nil, fmt.Errorf("bipartite: user id %d out of range [0,%d)", e.U, numUsers)
		}
		if int(e.V) >= numMerchants {
			return nil, fmt.Errorf("bipartite: merchant id %d out of range [0,%d)", e.V, numMerchants)
		}
	}
	return buildFromEdges(numUsers, numMerchants, append([]Edge(nil), edges...)), nil
}

// buildFromEdges sorts, dedups and lays out both CSR directions. It takes
// ownership of edges.
func buildFromEdges(numUsers, numMerchants int, edges []Edge) *Graph {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	// Dedup in place.
	dedup := edges[:0]
	for i, e := range edges {
		if i == 0 || e != edges[i-1] {
			dedup = append(dedup, e)
		}
	}
	edges = dedup

	g := &Graph{
		userOff:  make([]int, numUsers+1),
		userAdj:  make([]uint32, len(edges)),
		merchOff: make([]int, numMerchants+1),
		merchAdj: make([]uint32, len(edges)),
	}
	for _, e := range edges {
		g.userOff[e.U+1]++
		g.merchOff[e.V+1]++
	}
	for i := 1; i <= numUsers; i++ {
		g.userOff[i] += g.userOff[i-1]
	}
	for i := 1; i <= numMerchants; i++ {
		g.merchOff[i] += g.merchOff[i-1]
	}
	ucur := make([]int, numUsers)
	mcur := make([]int, numMerchants)
	for _, e := range edges {
		g.userAdj[g.userOff[e.U]+ucur[e.U]] = e.V
		ucur[e.U]++
		g.merchAdj[g.merchOff[e.V]+mcur[e.V]] = e.U
		mcur[e.V]++
	}
	// merchant rows receive user ids in user-major order, hence already sorted.
	return g
}

// ErrEmptyGraph is returned by algorithms that need at least one edge.
var ErrEmptyGraph = errors.New("bipartite: graph has no edges")
