package bipartite

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRowRangesAndAdjAccessors(t *testing.T) {
	g := smallGraph(t)
	// User-major positions must agree with UserNeighbors.
	for u := 0; u < g.NumUsers(); u++ {
		start, end := g.UserRowRange(uint32(u))
		neigh := g.UserNeighbors(uint32(u))
		if end-start != len(neigh) {
			t.Fatalf("user %d range width %d != degree %d", u, end-start, len(neigh))
		}
		for i := start; i < end; i++ {
			if g.UserAdjAt(i) != neigh[i-start] {
				t.Errorf("UserAdjAt(%d) = %d, want %d", i, g.UserAdjAt(i), neigh[i-start])
			}
		}
	}
	// Merchant-major positions must agree with MerchantNeighbors.
	for v := 0; v < g.NumMerchants(); v++ {
		start, end := g.MerchantRowRange(uint32(v))
		neigh := g.MerchantNeighbors(uint32(v))
		if end-start != len(neigh) {
			t.Fatalf("merchant %d range width %d != degree %d", v, end-start, len(neigh))
		}
		for p := start; p < end; p++ {
			if g.MerchantAdjAt(p) != neigh[p-start] {
				t.Errorf("MerchantAdjAt(%d) = %d, want %d", p, g.MerchantAdjAt(p), neigh[p-start])
			}
		}
	}
}

func TestBuildCrossIndexSmall(t *testing.T) {
	g := smallGraph(t)
	xi := g.BuildCrossIndex()
	if len(xi) != g.NumEdges() {
		t.Fatalf("cross index len = %d, want %d", len(xi), g.NumEdges())
	}
	// Every merchant-major position must point at the user-major id of the
	// same edge.
	for v := 0; v < g.NumMerchants(); v++ {
		start, end := g.MerchantRowRange(uint32(v))
		for p := start; p < end; p++ {
			u := g.MerchantAdjAt(p)
			i := int(xi[p])
			us, ue := g.UserRowRange(u)
			if i < us || i >= ue {
				t.Fatalf("xi[%d]=%d outside user %d's range [%d,%d)", p, i, u, us, ue)
			}
			if g.UserAdjAt(i) != uint32(v) {
				t.Errorf("xi[%d] maps to edge (%d,%d), want merchant %d", p, u, g.UserAdjAt(i), v)
			}
		}
	}
}

func TestPropertyCrossIndexIsBijection(t *testing.T) {
	// The cross index must be a permutation of [0, NumEdges) mapping each
	// merchant-major position to the matching user-major edge.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu, nm := 1+rng.Intn(30), 1+rng.Intn(30)
		g, err := FromEdges(nu, nm, randomEdges(rng, nu, nm, rng.Intn(200)))
		if err != nil {
			return false
		}
		xi := g.BuildCrossIndex()
		seen := make([]bool, g.NumEdges())
		for _, i := range xi {
			if int(i) >= len(seen) || seen[i] {
				return false
			}
			seen[i] = true
		}
		for v := 0; v < g.NumMerchants(); v++ {
			start, end := g.MerchantRowRange(uint32(v))
			for p := start; p < end; p++ {
				if g.UserAdjAt(int(xi[p])) != uint32(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
