package bipartite

import "testing"

func TestRowRangesAndAdjAccessors(t *testing.T) {
	g := smallGraph(t)
	// User-major positions must agree with UserNeighbors.
	for u := 0; u < g.NumUsers(); u++ {
		start, end := g.UserRowRange(uint32(u))
		neigh := g.UserNeighbors(uint32(u))
		if end-start != len(neigh) {
			t.Fatalf("user %d range width %d != degree %d", u, end-start, len(neigh))
		}
		for i := start; i < end; i++ {
			if g.UserAdjAt(i) != neigh[i-start] {
				t.Errorf("UserAdjAt(%d) = %d, want %d", i, g.UserAdjAt(i), neigh[i-start])
			}
		}
	}
	// Merchant-major positions must agree with MerchantNeighbors.
	for v := 0; v < g.NumMerchants(); v++ {
		start, end := g.MerchantRowRange(uint32(v))
		neigh := g.MerchantNeighbors(uint32(v))
		if end-start != len(neigh) {
			t.Fatalf("merchant %d range width %d != degree %d", v, end-start, len(neigh))
		}
		for p := start; p < end; p++ {
			if g.MerchantAdjAt(p) != neigh[p-start] {
				t.Errorf("MerchantAdjAt(%d) = %d, want %d", p, g.MerchantAdjAt(p), neigh[p-start])
			}
		}
	}
}
