package bipartite

// ComponentLabels holds the connected-component decomposition of a bipartite
// graph. Users and merchants carry separate label slices; two nodes share a
// label iff they are connected. Labels are dense in [0, Count).
type ComponentLabels struct {
	User     []int32
	Merchant []int32
	Count    int
	// Sizes[c] is the number of nodes (both sides) in component c.
	Sizes []int
}

// ConnectedComponents labels the connected components of g with an iterative
// BFS. Isolated nodes each form their own singleton component.
func ConnectedComponents(g *Graph) *ComponentLabels {
	const unvisited = int32(-1)
	cl := &ComponentLabels{
		User:     make([]int32, g.NumUsers()),
		Merchant: make([]int32, g.NumMerchants()),
	}
	for i := range cl.User {
		cl.User[i] = unvisited
	}
	for i := range cl.Merchant {
		cl.Merchant[i] = unvisited
	}

	// frontier entries encode side in the sign-free way: (side, id).
	type node struct {
		side Side
		id   uint32
	}
	var queue []node
	next := int32(0)
	bfs := func(start node) int {
		size := 0
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			n := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			if n.side == UserSide {
				for _, v := range g.UserNeighbors(n.id) {
					if cl.Merchant[v] == unvisited {
						cl.Merchant[v] = next
						queue = append(queue, node{MerchantSide, v})
					}
				}
			} else {
				for _, u := range g.MerchantNeighbors(n.id) {
					if cl.User[u] == unvisited {
						cl.User[u] = next
						queue = append(queue, node{UserSide, u})
					}
				}
			}
		}
		return size
	}

	for u := 0; u < g.NumUsers(); u++ {
		if cl.User[u] != unvisited {
			continue
		}
		cl.User[u] = next
		cl.Sizes = append(cl.Sizes, bfs(node{UserSide, uint32(u)}))
		next++
	}
	for v := 0; v < g.NumMerchants(); v++ {
		if cl.Merchant[v] != unvisited {
			continue
		}
		cl.Merchant[v] = next
		cl.Sizes = append(cl.Sizes, bfs(node{MerchantSide, uint32(v)}))
		next++
	}
	cl.Count = int(next)
	return cl
}

// LargestComponent returns the label of the largest component and its size.
// It returns (-1, 0) for an empty graph.
func (cl *ComponentLabels) LargestComponent() (label int32, size int) {
	label = -1
	for c, s := range cl.Sizes {
		if s > size {
			label, size = int32(c), s
		}
	}
	return label, size
}
