package bipartite

import (
	"math/rand"
	"reflect"
	"testing"
)

// graphsIdentical reports whether two graphs have byte-identical CSR arrays.
// Both directions are compared so a desync between them cannot hide.
func graphsIdentical(a, b *Graph) bool {
	return reflect.DeepEqual(a.userOff, b.userOff) &&
		reflect.DeepEqual(a.userAdj, b.userAdj) &&
		reflect.DeepEqual(a.merchOff, b.merchOff) &&
		reflect.DeepEqual(a.merchAdj, b.merchAdj)
}

func mustFromEdges(t *testing.T, nu, nm int, edges []Edge) *Graph {
	t.Helper()
	g, err := FromEdges(nu, nm, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExtendMatchesFullBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	base := make([]Edge, 0, 600)
	for i := 0; i < 600; i++ {
		base = append(base, Edge{U: uint32(rng.Intn(80)), V: uint32(rng.Intn(60))})
	}
	prev := mustFromEdges(t, 80, 60, base)

	cases := []struct {
		name  string
		delta []Edge
	}{
		{"empty", nil},
		{"single new", []Edge{{U: 3, V: 59}}},
		{"new user row beyond prev", []Edge{{U: 200, V: 5}, {U: 200, V: 3}}},
		{"new merchant column beyond prev", []Edge{{U: 0, V: 300}}},
		{"duplicate of prev only", []Edge{base[0], base[1]}},
		{"duplicates within delta", []Edge{{U: 90, V: 7}, {U: 90, V: 7}, {U: 90, V: 2}}},
		{"mixed", append([]Edge{{U: 79, V: 59}, {U: 0, V: 0}, {U: 150, V: 90}, {U: 150, V: 90}}, base[10:20]...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := NewExtendBuilder().Extend(prev, tc.delta, 0, 0)
			if err := got.Validate(); err != nil {
				t.Fatalf("extended graph invalid: %v", err)
			}
			union := append(append([]Edge(nil), base...), tc.delta...)
			want := mustFromEdges(t, got.NumUsers(), got.NumMerchants(), union)
			if !graphsIdentical(got, want) {
				t.Fatalf("extend diverged from full build:\n got %v\nwant %v", got, want)
			}
		})
	}
}

// TestExtendChained grows a graph through many random delta rounds on one
// reused builder and checks every intermediate result against a from-scratch
// build — the exact access pattern of the streaming snapshot path.
func TestExtendChained(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewExtendBuilder()
	var all []Edge
	cur := NewExtendBuilder().Extend(nil, nil, 0, 0)
	for round := 0; round < 30; round++ {
		delta := make([]Edge, 0, 40)
		for i := 0; i < 1+rng.Intn(40); i++ {
			delta = append(delta, Edge{U: uint32(rng.Intn(120)), V: uint32(rng.Intn(90))})
		}
		cur = b.Extend(cur, delta, 0, 0)
		all = append(all, delta...)
		if err := cur.Validate(); err != nil {
			t.Fatalf("round %d: invalid: %v", round, err)
		}
		want := mustFromEdges(t, cur.NumUsers(), cur.NumMerchants(), all)
		if !graphsIdentical(cur, want) {
			t.Fatalf("round %d: extend diverged from full build", round)
		}
	}
	if cur.NumEdges() == 0 {
		t.Fatal("chain produced an empty graph")
	}
}

func TestExtendRaisesDeclaredSizes(t *testing.T) {
	g := NewExtendBuilder().Extend(nil, []Edge{{U: 5, V: 9}}, 100, 200)
	if g.NumUsers() != 100 || g.NumMerchants() != 200 {
		t.Fatalf("declared sizes not honoured: %v", g)
	}
	if !g.HasEdge(5, 9) {
		t.Fatal("edge missing")
	}
}

// TestExtendAllocsIndependentOfGraphSize pins the delta path's allocation
// contract: for a fixed delta, a warm builder allocates the same number of
// times no matter how large the base graph is (the four output arrays plus
// nothing per |E|).
func TestExtendAllocsIndependentOfGraphSize(t *testing.T) {
	counts := make(map[int]float64)
	for _, sz := range []int{1 << 12, 1 << 15} {
		rng := rand.New(rand.NewSource(3))
		edges := make([]Edge, 0, sz)
		for i := 0; i < sz; i++ {
			edges = append(edges, Edge{U: uint32(rng.Intn(sz / 8)), V: uint32(rng.Intn(sz / 8))})
		}
		prev := mustFromEdges(t, sz/8, sz/8, edges)
		b := NewExtendBuilder()
		delta := []Edge{{U: 1, V: 2}, {U: 3, V: 4}, {U: 5, V: 6}, {U: 7, V: 8}}
		b.Extend(prev, delta, 0, 0) // warm the builder's scratch
		counts[sz] = testing.AllocsPerRun(10, func() {
			b.Extend(prev, delta, 0, 0)
		})
	}
	if counts[1<<12] != counts[1<<15] {
		t.Errorf("allocs/op scales with |E|: %v", counts)
	}
	if counts[1<<15] > 8 {
		t.Errorf("delta extend allocates %v times, want <= 8", counts[1<<15])
	}
}
