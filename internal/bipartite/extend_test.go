package bipartite

import (
	"math/rand"
	"reflect"
	"testing"
)

// graphsIdentical reports whether two graphs have byte-identical CSR arrays.
// Both directions are compared so a desync between them cannot hide.
func graphsIdentical(a, b *Graph) bool {
	return reflect.DeepEqual(a.userOff, b.userOff) &&
		reflect.DeepEqual(a.userAdj, b.userAdj) &&
		reflect.DeepEqual(a.merchOff, b.merchOff) &&
		reflect.DeepEqual(a.merchAdj, b.merchAdj)
}

func mustFromEdges(t *testing.T, nu, nm int, edges []Edge) *Graph {
	t.Helper()
	g, err := FromEdges(nu, nm, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExtendMatchesFullBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	base := make([]Edge, 0, 600)
	for i := 0; i < 600; i++ {
		base = append(base, Edge{U: uint32(rng.Intn(80)), V: uint32(rng.Intn(60))})
	}
	prev := mustFromEdges(t, 80, 60, base)

	cases := []struct {
		name  string
		delta []Edge
	}{
		{"empty", nil},
		{"single new", []Edge{{U: 3, V: 59}}},
		{"new user row beyond prev", []Edge{{U: 200, V: 5}, {U: 200, V: 3}}},
		{"new merchant column beyond prev", []Edge{{U: 0, V: 300}}},
		{"duplicate of prev only", []Edge{base[0], base[1]}},
		{"duplicates within delta", []Edge{{U: 90, V: 7}, {U: 90, V: 7}, {U: 90, V: 2}}},
		{"mixed", append([]Edge{{U: 79, V: 59}, {U: 0, V: 0}, {U: 150, V: 90}, {U: 150, V: 90}}, base[10:20]...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := NewExtendBuilder().Extend(prev, tc.delta, 0, 0)
			if err := got.Validate(); err != nil {
				t.Fatalf("extended graph invalid: %v", err)
			}
			union := append(append([]Edge(nil), base...), tc.delta...)
			want := mustFromEdges(t, got.NumUsers(), got.NumMerchants(), union)
			if !graphsIdentical(got, want) {
				t.Fatalf("extend diverged from full build:\n got %v\nwant %v", got, want)
			}
		})
	}
}

// TestExtendChained grows a graph through many random delta rounds on one
// reused builder and checks every intermediate result against a from-scratch
// build — the exact access pattern of the streaming snapshot path.
func TestExtendChained(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewExtendBuilder()
	var all []Edge
	cur := NewExtendBuilder().Extend(nil, nil, 0, 0)
	for round := 0; round < 30; round++ {
		delta := make([]Edge, 0, 40)
		for i := 0; i < 1+rng.Intn(40); i++ {
			delta = append(delta, Edge{U: uint32(rng.Intn(120)), V: uint32(rng.Intn(90))})
		}
		cur = b.Extend(cur, delta, 0, 0)
		all = append(all, delta...)
		if err := cur.Validate(); err != nil {
			t.Fatalf("round %d: invalid: %v", round, err)
		}
		want := mustFromEdges(t, cur.NumUsers(), cur.NumMerchants(), all)
		if !graphsIdentical(cur, want) {
			t.Fatalf("round %d: extend diverged from full build", round)
		}
	}
	if cur.NumEdges() == 0 {
		t.Fatal("chain produced an empty graph")
	}
}

func TestExtendRaisesDeclaredSizes(t *testing.T) {
	g := NewExtendBuilder().Extend(nil, []Edge{{U: 5, V: 9}}, 100, 200)
	if g.NumUsers() != 100 || g.NumMerchants() != 200 {
		t.Fatalf("declared sizes not honoured: %v", g)
	}
	if !g.HasEdge(5, 9) {
		t.Fatal("edge missing")
	}
}

// applyDelta computes (edges \ deletes) ∪ inserts as a plain edge list — the
// reference semantics ExtendDelta must reproduce.
func applyDelta(edges, inserts, deletes []Edge) []Edge {
	set := make(map[Edge]struct{}, len(edges)+len(inserts))
	for _, e := range edges {
		set[e] = struct{}{}
	}
	for _, e := range deletes {
		delete(set, e)
	}
	for _, e := range inserts {
		set[e] = struct{}{}
	}
	out := make([]Edge, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	return out
}

func TestExtendDeltaMatchesFullBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := make([]Edge, 0, 600)
	for i := 0; i < 600; i++ {
		base = append(base, Edge{U: uint32(rng.Intn(80)), V: uint32(rng.Intn(60))})
	}
	prev := mustFromEdges(t, 80, 60, base)

	cases := []struct {
		name             string
		inserts, deletes []Edge
	}{
		{"delete one", nil, base[:1]},
		{"delete run in one row", nil, base[10:30]},
		{"delete absent edge is a no-op", nil, []Edge{{U: 79, V: 59}, {U: 500, V: 500}}},
		{"delete whole row empties it", nil, rowEdges(prev, 0)},
		{"delete and reinsert same edge", base[:5], base[:5]},
		{"insert and delete disjoint", []Edge{{U: 90, V: 7}, {U: 0, V: 59}}, base[40:60]},
		{"duplicate deletes", nil, append(append([]Edge(nil), base[:3]...), base[:3]...)},
		{"everything at once", append([]Edge{{U: 200, V: 90}, {U: 0, V: 0}}, base[100:110]...),
			append(append([]Edge(nil), base[:50]...), Edge{U: 300, V: 2})},
		{"delete all edges", nil, base},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := NewExtendBuilder().ExtendDelta(prev, tc.inserts, tc.deletes, 0, 0)
			if err := got.Validate(); err != nil {
				t.Fatalf("delta-extended graph invalid: %v", err)
			}
			want := mustFromEdges(t, got.NumUsers(), got.NumMerchants(), applyDelta(base, tc.inserts, tc.deletes))
			if !graphsIdentical(got, want) {
				t.Fatalf("delta extend diverged from full build over the surviving set:\n got %v\nwant %v", got, want)
			}
		})
	}
}

// rowEdges returns every edge of user u in g.
func rowEdges(g *Graph, u uint32) []Edge {
	out := make([]Edge, 0, g.UserDegree(u))
	for _, v := range g.UserNeighbors(u) {
		out = append(out, Edge{U: u, V: v})
	}
	return out
}

// TestExtendDeltaChained churns a graph through random insert+delete rounds
// on one reused builder — the windowed streaming access pattern — checking
// every intermediate CSR byte-for-byte against a from-scratch build of the
// surviving edge set.
func TestExtendDeltaChained(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	b := NewExtendBuilder()
	live := map[Edge]struct{}{}
	cur := NewExtendBuilder().Extend(nil, nil, 0, 0)
	for round := 0; round < 40; round++ {
		inserts := make([]Edge, 0, 40)
		for i := 0; i < 1+rng.Intn(40); i++ {
			inserts = append(inserts, Edge{U: uint32(rng.Intn(120)), V: uint32(rng.Intn(90))})
		}
		// Delete a random sample of the live set (plus the occasional absent
		// edge, which must be ignored).
		var deletes []Edge
		for e := range live {
			if rng.Intn(4) == 0 {
				deletes = append(deletes, e)
			}
		}
		if rng.Intn(2) == 0 {
			deletes = append(deletes, Edge{U: 999, V: 999})
		}
		// The surviving-set model mirrors ExtendDelta's semantics: deletes
		// first, inserts win.
		for _, e := range deletes {
			delete(live, e)
		}
		for _, e := range inserts {
			live[e] = struct{}{}
		}
		cur = b.ExtendDelta(cur, inserts, deletes, 0, 0)
		if err := cur.Validate(); err != nil {
			t.Fatalf("round %d: invalid: %v", round, err)
		}
		surviving := make([]Edge, 0, len(live))
		for e := range live {
			surviving = append(surviving, e)
		}
		want := mustFromEdges(t, cur.NumUsers(), cur.NumMerchants(), surviving)
		if !graphsIdentical(cur, want) {
			t.Fatalf("round %d: delta extend diverged from full build", round)
		}
		if cur.NumEdges() != len(live) {
			t.Fatalf("round %d: %d edges, model has %d", round, cur.NumEdges(), len(live))
		}
	}
}

// TestExtendDeltaAllocs pins that the deletion-aware path keeps the
// allocation contract of the insert-only path: a warm builder's allocs/op is
// independent of base graph size even when every build carries deletes.
func TestExtendDeltaAllocs(t *testing.T) {
	counts := make(map[int]float64)
	for _, sz := range []int{1 << 12, 1 << 15} {
		rng := rand.New(rand.NewSource(3))
		edges := make([]Edge, 0, sz)
		for i := 0; i < sz; i++ {
			edges = append(edges, Edge{U: uint32(rng.Intn(sz / 8)), V: uint32(rng.Intn(sz / 8))})
		}
		prev := mustFromEdges(t, sz/8, sz/8, edges)
		b := NewExtendBuilder()
		inserts := []Edge{{U: 1, V: 2}, {U: 3, V: 4}}
		deletes := []Edge{prev.EdgeAt(0), prev.EdgeAt(prev.NumEdges() - 1)}
		b.ExtendDelta(prev, inserts, deletes, 0, 0) // warm the builder's scratch
		counts[sz] = testing.AllocsPerRun(10, func() {
			b.ExtendDelta(prev, inserts, deletes, 0, 0)
		})
	}
	if counts[1<<12] != counts[1<<15] {
		t.Errorf("allocs/op scales with |E|: %v", counts)
	}
	if counts[1<<15] > 8 {
		t.Errorf("delta extend allocates %v times, want <= 8", counts[1<<15])
	}
}

// TestExtendAllocsIndependentOfGraphSize pins the delta path's allocation
// contract: for a fixed delta, a warm builder allocates the same number of
// times no matter how large the base graph is (the four output arrays plus
// nothing per |E|).
func TestExtendAllocsIndependentOfGraphSize(t *testing.T) {
	counts := make(map[int]float64)
	for _, sz := range []int{1 << 12, 1 << 15} {
		rng := rand.New(rand.NewSource(3))
		edges := make([]Edge, 0, sz)
		for i := 0; i < sz; i++ {
			edges = append(edges, Edge{U: uint32(rng.Intn(sz / 8)), V: uint32(rng.Intn(sz / 8))})
		}
		prev := mustFromEdges(t, sz/8, sz/8, edges)
		b := NewExtendBuilder()
		delta := []Edge{{U: 1, V: 2}, {U: 3, V: 4}, {U: 5, V: 6}, {U: 7, V: 8}}
		b.Extend(prev, delta, 0, 0) // warm the builder's scratch
		counts[sz] = testing.AllocsPerRun(10, func() {
			b.Extend(prev, delta, 0, 0)
		})
	}
	if counts[1<<12] != counts[1<<15] {
		t.Errorf("allocs/op scales with |E|: %v", counts)
	}
	if counts[1<<15] > 8 {
		t.Errorf("delta extend allocates %v times, want <= 8", counts[1<<15])
	}
}
