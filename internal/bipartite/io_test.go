package bipartite

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# who buy-from where
0	0
0 1

1	1
# trailing comment
2 1
2	2
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	want := smallGraph(t)
	if !reflect.DeepEqual(g.EdgeList(), want.EdgeList()) {
		t.Errorf("edges = %v, want %v", g.EdgeList(), want.EdgeList())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",                       // one field
		"a\t1\n",                    // bad user
		"1\tb\n",                    // bad merchant
		"-1\t0\n",                   // negative
		"99999999999999999999\t0\n", // overflow
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("ReadEdgeList(%q) succeeded, want error", in)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	g := smallGraph(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if !reflect.DeepEqual(g.EdgeList(), g2.EdgeList()) {
		t.Errorf("round trip changed edges")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := FromEdges(30, 40, randomEdges(rng, 30, 40, 500))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if g2.NumUsers() != g.NumUsers() || g2.NumMerchants() != g.NumMerchants() {
		t.Fatalf("sizes differ: got (%d,%d), want (%d,%d)",
			g2.NumUsers(), g2.NumMerchants(), g.NumUsers(), g.NumMerchants())
	}
	if !reflect.DeepEqual(g.EdgeList(), g2.EdgeList()) {
		t.Errorf("binary round trip changed edges")
	}
}

func TestBinaryPreservesIsolatedNodes(t *testing.T) {
	g, err := FromEdges(10, 10, []Edge{{U: 0, V: 0}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumUsers() != 10 || g2.NumMerchants() != 10 {
		t.Errorf("isolated nodes lost: (%d,%d)", g2.NumUsers(), g2.NumMerchants())
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 32))); err == nil {
		t.Error("ReadBinary accepted zeroed header")
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	g := smallGraph(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Error("ReadBinary accepted truncated payload")
	}
}
