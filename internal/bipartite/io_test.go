package bipartite

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# who buy-from where
0	0
0 1

1	1
# trailing comment
2 1
2	2
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	want := smallGraph(t)
	if !reflect.DeepEqual(g.EdgeList(), want.EdgeList()) {
		t.Errorf("edges = %v, want %v", g.EdgeList(), want.EdgeList())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",                       // one field
		"a\t1\n",                    // bad user
		"1\tb\n",                    // bad merchant
		"-1\t0\n",                   // negative
		"99999999999999999999\t0\n", // overflow
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("ReadEdgeList(%q) succeeded, want error", in)
		}
	}
}

func TestReadEdgeListCRLF(t *testing.T) {
	// Windows-style line endings must parse identically to \n.
	in := "# crlf file\r\n0\t0\r\n\r\n0 1\r\n1\t1\r\n2 1\r\n2\t2\r\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEdgeList(CRLF): %v", err)
	}
	want := smallGraph(t)
	if !reflect.DeepEqual(g.EdgeList(), want.EdgeList()) {
		t.Errorf("edges = %v, want %v", g.EdgeList(), want.EdgeList())
	}
}

func TestTextRoundTripThroughCommentsAndNoise(t *testing.T) {
	// A noisy input — comments, blank lines, CRLF, duplicate edges — must
	// survive read → write → read with a canonical, deduplicated edge set.
	in := "# header\r\n\r\n3\t1\n0 0\r\n# mid comment\n0\t0\n2 2\r\n\n"
	g1, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("first read: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g1); err != nil {
		t.Fatalf("write: %v", err)
	}
	g2, err := ReadEdgeList(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("second read: %v", err)
	}
	wantEdges := []Edge{{U: 0, V: 0}, {U: 2, V: 2}, {U: 3, V: 1}}
	if !reflect.DeepEqual(g1.EdgeList(), wantEdges) {
		t.Errorf("first read edges = %v, want %v", g1.EdgeList(), wantEdges)
	}
	if !reflect.DeepEqual(g2.EdgeList(), g1.EdgeList()) {
		t.Errorf("round trip changed edges: %v vs %v", g2.EdgeList(), g1.EdgeList())
	}
}

func TestReadEdgeListMaxRejectsHugeIDs(t *testing.T) {
	// A 20-byte line naming a near-2^32 id must fail during parsing — the
	// builder would otherwise commit to O(max_id) offset arrays.
	if _, err := ReadEdgeListMax(strings.NewReader("4294967294\t0\n"), 1000); err == nil {
		t.Error("id above the bound accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("4294967295\t0\n")); err == nil {
		t.Error("id 2^32-1 accepted (CSR offsets index by id+1)")
	}
	g, err := ReadEdgeListMax(strings.NewReader("1000\t7\n"), 1000)
	if err != nil {
		t.Fatalf("id at the bound rejected: %v", err)
	}
	if g.NumUsers() != 1001 {
		t.Errorf("NumUsers = %d, want 1001", g.NumUsers())
	}
}

func TestReadEdgeListErrorReportsLineNumber(t *testing.T) {
	// Line numbering must count comments and blanks so the error points at
	// the real file position.
	in := "# comment\n0\t0\n\nnot numbers here\n"
	_, err := ReadEdgeList(strings.NewReader(in))
	if err == nil {
		t.Fatal("malformed line accepted")
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error %q does not name line 4", err)
	}
}

func TestTextRoundTrip(t *testing.T) {
	g := smallGraph(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if !reflect.DeepEqual(g.EdgeList(), g2.EdgeList()) {
		t.Errorf("round trip changed edges")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := FromEdges(30, 40, randomEdges(rng, 30, 40, 500))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if g2.NumUsers() != g.NumUsers() || g2.NumMerchants() != g.NumMerchants() {
		t.Fatalf("sizes differ: got (%d,%d), want (%d,%d)",
			g2.NumUsers(), g2.NumMerchants(), g.NumUsers(), g.NumMerchants())
	}
	if !reflect.DeepEqual(g.EdgeList(), g2.EdgeList()) {
		t.Errorf("binary round trip changed edges")
	}
}

func TestBinaryPreservesIsolatedNodes(t *testing.T) {
	g, err := FromEdges(10, 10, []Edge{{U: 0, V: 0}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumUsers() != 10 || g2.NumMerchants() != 10 {
		t.Errorf("isolated nodes lost: (%d,%d)", g2.NumUsers(), g2.NumMerchants())
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 32))); err == nil {
		t.Error("ReadBinary accepted zeroed header")
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	g := smallGraph(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Error("ReadBinary accepted truncated payload")
	}
}
