package bipartite

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSideHelpers(t *testing.T) {
	if UserSide.Other() != MerchantSide || MerchantSide.Other() != UserSide {
		t.Error("Side.Other is not an involution")
	}
	if UserSide.String() != "user" || MerchantSide.String() != "merchant" {
		t.Errorf("Side.String: %q / %q", UserSide, MerchantSide)
	}
	if Side(99).String() != "invalid-side" {
		t.Errorf("invalid side String = %q", Side(99))
	}
}

func TestAvgDegree(t *testing.T) {
	g := smallGraph(t)
	if got, want := g.AvgDegree(UserSide), 5.0/3.0; got != want {
		t.Errorf("AvgDegree(user) = %g, want %g", got, want)
	}
	if got, want := g.AvgDegree(MerchantSide), 5.0/3.0; got != want {
		t.Errorf("AvgDegree(merchant) = %g, want %g", got, want)
	}
	empty := NewBuilder().Build()
	if empty.AvgDegree(UserSide) != 0 {
		t.Error("AvgDegree on empty graph != 0")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := smallGraph(t)
	hist := g.DegreeHistogram(MerchantSide) // degrees 1, 3, 1
	want := []int{0, 2, 0, 1}
	if len(hist) != len(want) {
		t.Fatalf("hist len = %d, want %d", len(hist), len(want))
	}
	for q, w := range want {
		if hist[q] != w {
			t.Errorf("hist[%d] = %d, want %d", q, hist[q], w)
		}
	}
}

func TestPropertyHistogramSums(t *testing.T) {
	// Σ_q fD(q) = n and Σ_q q·fD(q) = |E|.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu, nm := 1+rng.Intn(30), 1+rng.Intn(30)
		g, err := FromEdges(nu, nm, randomEdges(rng, nu, nm, rng.Intn(200)))
		if err != nil {
			return false
		}
		for _, side := range []Side{UserSide, MerchantSide} {
			hist := g.DegreeHistogram(side)
			n, e := 0, 0
			for q, c := range hist {
				n += c
				e += q * c
			}
			if n != g.NumNodesOn(side) || e != g.NumEdges() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDegreeQuantile(t *testing.T) {
	g := smallGraph(t)
	if got := g.DegreeQuantile(MerchantSide, 0); got != 1 {
		t.Errorf("q0 = %d, want 1", got)
	}
	if got := g.DegreeQuantile(MerchantSide, 1); got != 3 {
		t.Errorf("q1 = %d, want 3", got)
	}
	empty := NewBuilder().Build()
	if empty.DegreeQuantile(UserSide, 0.5) != 0 {
		t.Error("quantile on empty side != 0")
	}
}

func TestSummarize(t *testing.T) {
	g, err := FromEdges(4, 3, []Edge{{U: 0, V: 0}, {U: 0, V: 1}, {U: 1, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(g)
	if s.Users != 4 || s.Merchants != 3 || s.Edges != 3 {
		t.Errorf("sizes wrong: %+v", s)
	}
	if s.MaxUserDegree != 2 || s.MaxMerchDegree != 2 {
		t.Errorf("max degrees wrong: %+v", s)
	}
	if s.IsolatedUsers != 2 || s.IsolatedMerchant != 1 {
		t.Errorf("isolated counts wrong: %+v", s)
	}
}
