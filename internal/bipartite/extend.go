package bipartite

import (
	"fmt"
	"slices"

	"ensemfdet/internal/scratch"
)

// ExtendBuilder constructs a new immutable Graph from a previous Graph plus a
// batch of delta edges, without re-sorting or re-scattering the edges the
// previous graph already laid out. It is the incremental half of the
// streaming snapshot path: a full rebuild pays O(|E| log |E|) to sort the
// whole edge log, while Extend pays O(|Δ| log |Δ|) to sort only the delta and
// then merges it into the previous CSR — unaffected rows are block-copied,
// affected rows are two-pointer merged, and the merchant side is derived the
// same way from the delta sorted merchant-major.
//
// The output is byte-identical to what a full build over the union edge set
// produces: merged rows stay strictly sorted and deduplicated, so the CSR is
// the same canonical function of (numUsers, numMerchants, edge set) that
// buildFromEdges computes.
//
// The builder itself is a reusable arena in the PR-2 sense: its sorted-delta
// and survivor buffers are grown in place (internal/scratch) and recycled
// across builds, so a warm Extend performs exactly the four output-array
// allocations an immutable snapshot requires — allocs/op is independent of
// both |E| and |Δ|. An ExtendBuilder must not be used from multiple
// goroutines concurrently; the stream layer guards its builder with the
// single-flight build lock.
type ExtendBuilder struct {
	ud []Edge // delta sorted user-major, deduped within the batch
	vd []Edge // surviving delta (not already in prev) sorted merchant-major
}

// NewExtendBuilder returns an empty builder; buffers grow lazily.
func NewExtendBuilder() *ExtendBuilder { return &ExtendBuilder{} }

func cmpUserMajor(a, b Edge) int {
	if a.U != b.U {
		if a.U < b.U {
			return -1
		}
		return 1
	}
	switch {
	case a.V < b.V:
		return -1
	case a.V > b.V:
		return 1
	}
	return 0
}

func cmpMerchantMajor(a, b Edge) int {
	if a.V != b.V {
		if a.V < b.V {
			return -1
		}
		return 1
	}
	switch {
	case a.U < b.U:
		return -1
	case a.U > b.U:
		return 1
	}
	return 0
}

// Extend returns the graph over prev's edges plus delta, with at least the
// given side sizes (they are raised to cover prev and every delta id, so
// passing the caller's tracked maxima is enough). Delta edges already present
// in prev, or repeated within delta, are merged away exactly as a full build
// would. prev is never modified; delta is read, not retained.
func (b *ExtendBuilder) Extend(prev *Graph, delta []Edge, numUsers, numMerchants int) *Graph {
	if prev == nil {
		prev = &Graph{}
	}
	numUsers = max(numUsers, prev.NumUsers())
	numMerchants = max(numMerchants, prev.NumMerchants())
	for _, e := range delta {
		numUsers = max(numUsers, int(e.U)+1)
		numMerchants = max(numMerchants, int(e.V)+1)
	}

	ud := scratch.Grow(&b.ud, len(delta))
	copy(ud, delta)
	slices.SortFunc(ud, cmpUserMajor)
	w := 0
	for i, e := range ud {
		if i == 0 || e != ud[i-1] {
			ud[w] = e
			w++
		}
	}
	ud = ud[:w]

	uoff, uadj := b.mergeUserSide(prev, ud, numUsers)

	// The user-side merge recorded which delta edges were genuinely new
	// (survivors); the merchant side merges exactly those, sorted
	// merchant-major, so both CSR directions describe the same edge set.
	vd := b.vd
	slices.SortFunc(vd, cmpMerchantMajor)
	moff, madj := mergeMerchantSide(prev, vd, numMerchants, len(uadj))

	return &Graph{userOff: uoff, userAdj: uadj, merchOff: moff, merchAdj: madj}
}

// mergeUserSide lays out the user-major CSR: rows without delta edges are
// block-copied from prev (offsets shifted by the running insertion count),
// rows with delta edges are merged. Survivors are collected into b.vd.
func (b *ExtendBuilder) mergeUserSide(prev *Graph, ud []Edge, numUsers int) ([]int, []uint32) {
	prevNU := prev.NumUsers()
	prevE := prev.NumEdges()
	uoff := make([]int, numUsers+1)
	uadj := make([]uint32, prevE+len(ud))
	vd := b.vd[:0]

	w := 0 // write cursor into uadj
	u := 0 // next row to lay out
	for di := 0; di < len(ud); {
		au := int(ud[di].U) // next affected row
		if u < au && u < prevNU {
			// Bulk-copy the untouched rows [u, min(au, prevNU)): one memcpy
			// for the adjacency, shifted offsets for the rows.
			end := min(au, prevNU)
			lo, hi := prev.userOff[u], prev.userOff[end]
			copy(uadj[w:], prev.userAdj[lo:hi])
			shift := w - lo
			for i := u; i < end; i++ {
				uoff[i] = prev.userOff[i] + shift
			}
			w += hi - lo
			u = end
		}
		for ; u < au; u++ { // rows beyond prev with no delta: empty
			uoff[u] = w
		}

		// Merge row au: prev's sorted row with the delta run for au.
		uoff[au] = w
		dj := di
		for dj < len(ud) && int(ud[dj].U) == au {
			dj++
		}
		var row []uint32
		if au < prevNU {
			row = prev.UserNeighbors(uint32(au))
		}
		ri := 0
		for ri < len(row) || di < dj {
			switch {
			case di == dj || (ri < len(row) && row[ri] < ud[di].V):
				uadj[w] = row[ri]
				ri++
				w++
			case ri < len(row) && row[ri] == ud[di].V:
				di++ // already present: delta edge merges away
			default:
				uadj[w] = ud[di].V
				vd = append(vd, ud[di])
				di++
				w++
			}
		}
		u = au + 1
	}
	if u < prevNU { // untouched tail of prev
		lo := prev.userOff[u]
		copy(uadj[w:], prev.userAdj[lo:prevE])
		shift := w - lo
		for i := u; i < prevNU; i++ {
			uoff[i] = prev.userOff[i] + shift
		}
		w += prevE - lo
		u = prevNU
	}
	for ; u <= numUsers; u++ {
		uoff[u] = w
	}
	b.vd = vd
	return uoff, uadj[:w]
}

// mergeMerchantSide mirrors mergeUserSide for the merchant-major direction.
// vd holds only edges absent from prev, so no equality case can arise; the
// wantEdges cross-check catches any desync between the two directions.
func mergeMerchantSide(prev *Graph, vd []Edge, numMerchants, wantEdges int) ([]int, []uint32) {
	prevNM := prev.NumMerchants()
	prevE := prev.NumEdges()
	moff := make([]int, numMerchants+1)
	madj := make([]uint32, prevE+len(vd))

	w := 0
	v := 0
	for di := 0; di < len(vd); {
		av := int(vd[di].V)
		if v < av && v < prevNM {
			end := min(av, prevNM)
			lo, hi := prev.merchOff[v], prev.merchOff[end]
			copy(madj[w:], prev.merchAdj[lo:hi])
			shift := w - lo
			for i := v; i < end; i++ {
				moff[i] = prev.merchOff[i] + shift
			}
			w += hi - lo
			v = end
		}
		for ; v < av; v++ {
			moff[v] = w
		}

		moff[av] = w
		dj := di
		for dj < len(vd) && int(vd[dj].V) == av {
			dj++
		}
		var row []uint32
		if av < prevNM {
			row = prev.MerchantNeighbors(uint32(av))
		}
		ri := 0
		for ri < len(row) || di < dj {
			if di == dj || (ri < len(row) && row[ri] < vd[di].U) {
				madj[w] = row[ri]
				ri++
			} else {
				madj[w] = vd[di].U
				di++
			}
			w++
		}
		v = av + 1
	}
	if v < prevNM {
		lo := prev.merchOff[v]
		copy(madj[w:], prev.merchAdj[lo:prevE])
		shift := w - lo
		for i := v; i < prevNM; i++ {
			moff[i] = prev.merchOff[i] + shift
		}
		w += prevE - lo
		v = prevNM
	}
	for ; v <= numMerchants; v++ {
		moff[v] = w
	}
	if w != wantEdges {
		panic(fmt.Sprintf("bipartite: extend desync: user side has %d edges, merchant side %d", wantEdges, w))
	}
	return moff, madj[:w]
}

// Rebuild is the full-build fallback for when a delta is too large for Extend
// to pay off: it constructs the graph from the complete edge list, exactly as
// Builder.Build would. edges is sorted in place and not retained, so callers
// may hand in a reusable scratch buffer.
func (b *ExtendBuilder) Rebuild(numUsers, numMerchants int, edges []Edge) *Graph {
	for _, e := range edges {
		numUsers = max(numUsers, int(e.U)+1)
		numMerchants = max(numMerchants, int(e.V)+1)
	}
	return buildFromEdges(numUsers, numMerchants, edges)
}
