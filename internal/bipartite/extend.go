package bipartite

import (
	"fmt"
	"slices"

	"ensemfdet/internal/scratch"
)

// ExtendBuilder constructs a new immutable Graph from a previous Graph plus a
// batch of inserted edges and a batch of deleted edges, without re-sorting or
// re-scattering the edges the previous graph already laid out. It is the
// incremental half of the streaming snapshot path: a full rebuild pays
// O(|E| log |E|) to sort the whole edge log, while ExtendDelta pays
// O(|Δ| log |Δ|) to sort only the delta — inserts and deletes — and then
// merges it into the previous CSR. Unaffected rows are block-copied, affected
// rows are three-stream merged (previous row, sorted insert run, sorted
// delete run), and the merchant side is derived the same way from the net
// surviving changes sorted merchant-major. Rows whose edges all expire simply
// emit nothing and drop out of the survivor bookkeeping; side sizes never
// shrink (ids are dense and stable), so an emptied row is an explicit empty
// row, exactly as a full rebuild over the surviving edge set lays it out.
//
// The output is byte-identical to what a full build over the resulting edge
// set produces: merged rows stay strictly sorted and deduplicated, so the CSR
// is the same canonical function of (numUsers, numMerchants, edge set) that
// buildFromEdges computes.
//
// The builder itself is a reusable arena in the PR-2 sense: its sorted-delta
// and survivor buffers are grown in place (internal/scratch) and recycled
// across builds, so a warm build performs exactly the four output-array
// allocations an immutable snapshot requires — allocs/op is independent of
// |E|, of the insert count, and of the delete count. An ExtendBuilder must
// not be used from multiple goroutines concurrently; the stream layer guards
// its builder with the single-flight build lock.
type ExtendBuilder struct {
	ud   []Edge // inserts sorted user-major, deduped within the batch
	dd   []Edge // deletes sorted user-major, deduped within the batch
	vd   []Edge // net inserts (absent from prev) sorted merchant-major
	vdel []Edge // net deletes (removed from prev) sorted merchant-major
}

// NewExtendBuilder returns an empty builder; buffers grow lazily.
func NewExtendBuilder() *ExtendBuilder { return &ExtendBuilder{} }

func cmpUserMajor(a, b Edge) int {
	if a.U != b.U {
		if a.U < b.U {
			return -1
		}
		return 1
	}
	switch {
	case a.V < b.V:
		return -1
	case a.V > b.V:
		return 1
	}
	return 0
}

func cmpMerchantMajor(a, b Edge) int {
	if a.V != b.V {
		if a.V < b.V {
			return -1
		}
		return 1
	}
	switch {
	case a.U < b.U:
		return -1
	case a.U > b.U:
		return 1
	}
	return 0
}

// Extend returns the graph over prev's edges plus delta, with at least the
// given side sizes. It is ExtendDelta with no deletions, kept for the
// insert-only callers and tests that predate windowing.
func (b *ExtendBuilder) Extend(prev *Graph, delta []Edge, numUsers, numMerchants int) *Graph {
	return b.ExtendDelta(prev, delta, nil, numUsers, numMerchants)
}

// ExtendDelta returns the graph over (prev's edges \ deletes) ∪ inserts, with
// at least the given side sizes (they are raised to cover prev and every
// delta id, so passing the caller's tracked maxima is enough — note deleting
// a node's last edge never shrinks a side).
//
// The semantics are set-algebraic, so every overlap is well defined: an
// insert already present in prev (and not deleted) merges away, a delete
// naming an edge absent from prev is ignored, and an edge appearing in both
// lists ends up present — that is exactly the expire-then-reobserve lifecycle
// the stream layer produces between two snapshots. prev is never modified;
// inserts and deletes are read, not retained.
func (b *ExtendBuilder) ExtendDelta(prev *Graph, inserts, deletes []Edge, numUsers, numMerchants int) *Graph {
	if prev == nil {
		prev = &Graph{}
	}
	numUsers = max(numUsers, prev.NumUsers())
	numMerchants = max(numMerchants, prev.NumMerchants())
	for _, e := range inserts {
		numUsers = max(numUsers, int(e.U)+1)
		numMerchants = max(numMerchants, int(e.V)+1)
	}

	ud := sortDedupInto(&b.ud, inserts)
	dd := sortDedupInto(&b.dd, deletes)
	// A delete naming a row beyond prev cannot remove anything (deletes never
	// grow a side); drop them here — sorted user-major they are a suffix — so
	// the row-merge loop only ever visits rows that exist.
	for len(dd) > 0 && int(dd[len(dd)-1].U) >= prev.NumUsers() {
		dd = dd[:len(dd)-1]
	}

	uoff, uadj := b.mergeUserSide(prev, ud, dd, numUsers)

	// The user-side merge recorded the net effect of the delta: inserts that
	// were genuinely new (vd) and deletes that genuinely removed a prev edge
	// (vdel). The merchant side applies exactly those, sorted merchant-major,
	// so both CSR directions describe the same edge set.
	slices.SortFunc(b.vd, cmpMerchantMajor)
	slices.SortFunc(b.vdel, cmpMerchantMajor)
	moff, madj := mergeMerchantSide(prev, b.vd, b.vdel, numMerchants, len(uadj))

	return &Graph{userOff: uoff, userAdj: uadj, merchOff: moff, merchAdj: madj}
}

// sortDedupInto copies edges into the reusable buffer at *buf, sorts them
// user-major and drops exact duplicates.
func sortDedupInto(buf *[]Edge, edges []Edge) []Edge {
	out := scratch.Grow(buf, len(edges))
	copy(out, edges)
	slices.SortFunc(out, cmpUserMajor)
	w := 0
	for i, e := range out {
		if i == 0 || e != out[i-1] {
			out[w] = e
			w++
		}
	}
	return out[:w]
}

// mergeUserSide lays out the user-major CSR: rows without delta edges are
// block-copied from prev (offsets shifted by the running net insertion
// count), rows with inserts or deletes are three-stream merged. Net inserts
// are collected into b.vd, net deletes into b.vdel.
func (b *ExtendBuilder) mergeUserSide(prev *Graph, ud, dd []Edge, numUsers int) ([]int, []uint32) {
	prevNU := prev.NumUsers()
	prevE := prev.NumEdges()
	uoff := make([]int, numUsers+1)
	uadj := make([]uint32, prevE+len(ud))
	vd := b.vd[:0]
	vdel := b.vdel[:0]

	w := 0  // write cursor into uadj
	u := 0  // next row to lay out
	di := 0 // cursor into ud
	ki := 0 // cursor into dd
	for di < len(ud) || ki < len(dd) {
		au := numUsers // next affected row
		if di < len(ud) {
			au = int(ud[di].U)
		}
		if ki < len(dd) && int(dd[ki].U) < au {
			au = int(dd[ki].U)
		}
		if u < au && u < prevNU {
			// Bulk-copy the untouched rows [u, min(au, prevNU)): one memcpy
			// for the adjacency, shifted offsets for the rows.
			end := min(au, prevNU)
			lo, hi := prev.userOff[u], prev.userOff[end]
			copy(uadj[w:], prev.userAdj[lo:hi])
			shift := w - lo
			for i := u; i < end; i++ {
				uoff[i] = prev.userOff[i] + shift
			}
			w += hi - lo
			u = end
		}
		for ; u < au; u++ { // rows beyond prev with no delta: empty
			uoff[u] = w
		}

		// Merge row au: prev's sorted row against the insert and delete runs
		// for au.
		uoff[au] = w
		dj := di
		for dj < len(ud) && int(ud[dj].U) == au {
			dj++
		}
		kj := ki
		for kj < len(dd) && int(dd[kj].U) == au {
			kj++
		}
		var row []uint32
		if au < prevNU {
			row = prev.UserNeighbors(uint32(au))
		}
		ri := 0
		for ri < len(row) || di < dj {
			var v uint32
			switch {
			case di == dj || (ri < len(row) && row[ri] < ud[di].V):
				// Next merchant comes from prev alone: keep it unless the
				// delete run names it.
				v = row[ri]
				ri++
				for ki < kj && dd[ki].V < v {
					ki++ // delete of an edge prev does not have: no-op
				}
				if ki < kj && dd[ki].V == v {
					ki++
					vdel = append(vdel, Edge{U: uint32(au), V: v})
					continue
				}
			case ri < len(row) && row[ri] == ud[di].V:
				// In prev and re-inserted: present either way. A matching
				// delete is annihilated by the re-insert (expire + reobserve
				// between two snapshots), so the row — and the net lists —
				// carry no change for this edge.
				v = row[ri]
				ri++
				di++
				for ki < kj && dd[ki].V < v {
					ki++
				}
				if ki < kj && dd[ki].V == v {
					ki++
				}
			default:
				// Genuinely new edge. A delete naming it cannot refer to a
				// prev edge, so the insert wins and the delete is a no-op.
				v = ud[di].V
				di++
				for ki < kj && dd[ki].V < v {
					ki++
				}
				if ki < kj && dd[ki].V == v {
					ki++
				}
				vd = append(vd, Edge{U: uint32(au), V: v})
			}
			uadj[w] = v
			w++
		}
		ki = kj // drain deletes past the row's last emitted merchant
		u = au + 1
	}
	if u < prevNU { // untouched tail of prev
		lo := prev.userOff[u]
		copy(uadj[w:], prev.userAdj[lo:prevE])
		shift := w - lo
		for i := u; i < prevNU; i++ {
			uoff[i] = prev.userOff[i] + shift
		}
		w += prevE - lo
		u = prevNU
	}
	for ; u <= numUsers; u++ {
		uoff[u] = w
	}
	b.vd = vd
	b.vdel = vdel
	return uoff, uadj[:w]
}

// mergeMerchantSide mirrors mergeUserSide for the merchant-major direction.
// vd holds only edges absent from prev and vdel only edges present in prev
// (the user-side merge computed the net effect), so neither list can collide
// with the other; the wantEdges cross-check catches any desync between the
// two directions.
func mergeMerchantSide(prev *Graph, vd, vdel []Edge, numMerchants, wantEdges int) ([]int, []uint32) {
	prevNM := prev.NumMerchants()
	prevE := prev.NumEdges()
	moff := make([]int, numMerchants+1)
	madj := make([]uint32, prevE+len(vd))

	w := 0
	v := 0
	di := 0
	ki := 0
	for di < len(vd) || ki < len(vdel) {
		av := numMerchants
		if di < len(vd) {
			av = int(vd[di].V)
		}
		if ki < len(vdel) && int(vdel[ki].V) < av {
			av = int(vdel[ki].V)
		}
		if v < av && v < prevNM {
			end := min(av, prevNM)
			lo, hi := prev.merchOff[v], prev.merchOff[end]
			copy(madj[w:], prev.merchAdj[lo:hi])
			shift := w - lo
			for i := v; i < end; i++ {
				moff[i] = prev.merchOff[i] + shift
			}
			w += hi - lo
			v = end
		}
		for ; v < av; v++ {
			moff[v] = w
		}

		moff[av] = w
		dj := di
		for dj < len(vd) && int(vd[dj].V) == av {
			dj++
		}
		kj := ki
		for kj < len(vdel) && int(vdel[kj].V) == av {
			kj++
		}
		var row []uint32
		if av < prevNM {
			row = prev.MerchantNeighbors(uint32(av))
		}
		ri := 0
		for ri < len(row) || di < dj {
			if di == dj || (ri < len(row) && row[ri] < vd[di].U) {
				u := row[ri]
				ri++
				if ki < kj && vdel[ki].U == u {
					ki++ // net delete: this prev edge is gone
					continue
				}
				madj[w] = u
			} else {
				madj[w] = vd[di].U
				di++
			}
			w++
		}
		ki = kj
		v = av + 1
	}
	if v < prevNM {
		lo := prev.merchOff[v]
		copy(madj[w:], prev.merchAdj[lo:prevE])
		shift := w - lo
		for i := v; i < prevNM; i++ {
			moff[i] = prev.merchOff[i] + shift
		}
		w += prevE - lo
		v = prevNM
	}
	for ; v <= numMerchants; v++ {
		moff[v] = w
	}
	if w != wantEdges {
		panic(fmt.Sprintf("bipartite: extend desync: user side has %d edges, merchant side %d", wantEdges, w))
	}
	return moff, madj[:w]
}

// Rebuild is the full-build fallback for when a delta is too large for the
// merge to pay off: it constructs the graph from the complete edge list,
// exactly as Builder.Build would. edges is sorted in place and not retained,
// so callers may hand in a reusable scratch buffer.
func (b *ExtendBuilder) Rebuild(numUsers, numMerchants int, edges []Edge) *Graph {
	for _, e := range edges {
		numUsers = max(numUsers, int(e.U)+1)
		numMerchants = max(numMerchants, int(e.V)+1)
	}
	return buildFromEdges(numUsers, numMerchants, edges)
}
