package bipartite

// Binary CSR codec: the persistence snapshot format. Unlike WriteBinary,
// which serializes the edge list and re-sorts into CSR on read, this codec
// writes the dual-CSR arrays verbatim behind a versioned header and a
// trailing CRC32C, so loading a snapshot is a streamed copy plus an O(|E|)
// validation pass — no O(|E| log |E|) rebuild at boot. The layout is
// little-endian throughout:
//
//	uint32 magic        csrMagic
//	uint32 format       csrFormatVersion
//	uint64 numUsers
//	uint64 numMerchants
//	uint64 numEdges
//	uint64 userOff[numUsers+1]
//	uint32 userAdj[numEdges]
//	uint64 merchOff[numMerchants+1]
//	uint32 merchAdj[numEdges]
//	uint32 crc32c       over every preceding byte (magic included)

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	csrMagic         = uint32(0xB1FA_C512)
	csrFormatVersion = uint32(1)

	// codecChunk bounds the scratch buffer (in array entries) the codec
	// streams arrays through, and the allocation growth step on read — a
	// corrupt header claiming 2^50 edges fails with ErrUnexpectedEOF after
	// reading the real file, instead of attempting one giant allocation.
	codecChunk = 1 << 15
)

// castagnoli is the CRC32C polynomial table shared by the CSR codec; it is
// the same checksum the persistence WAL frames records with.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteCSR writes g's dual-CSR representation in the versioned, checksummed
// binary snapshot format. The output is a canonical function of the graph:
// two graphs with the same sizes and edge set encode byte-identically.
func WriteCSR(w io.Writer, g *Graph) error {
	cw := &crcWriter{w: w, buf: make([]byte, 8*codecChunk)}
	cw.u32(csrMagic)
	cw.u32(csrFormatVersion)
	cw.u64(uint64(g.NumUsers()))
	cw.u64(uint64(g.NumMerchants()))
	cw.u64(uint64(g.NumEdges()))
	cw.offsets(g.userOff, g.NumUsers()+1)
	cw.adjacency(g.userAdj)
	cw.offsets(g.merchOff, g.NumMerchants()+1)
	cw.adjacency(g.merchAdj)
	sum := cw.sum
	cw.u32raw(sum)
	if cw.err != nil {
		return fmt.Errorf("bipartite: writing CSR snapshot: %w", cw.err)
	}
	return nil
}

// ReadCSR parses a snapshot written by WriteCSR, verifying the checksum and
// the CSR invariants before returning the graph.
func ReadCSR(r io.Reader) (*Graph, error) {
	cr := &crcReader{r: r, buf: make([]byte, 8*codecChunk)}
	if magic := cr.u32(); cr.err == nil && magic != csrMagic {
		return nil, fmt.Errorf("bipartite: bad CSR snapshot magic %#x", magic)
	}
	if format := cr.u32(); cr.err == nil && format != csrFormatVersion {
		return nil, fmt.Errorf("bipartite: unsupported CSR snapshot format %d (want %d)", format, csrFormatVersion)
	}
	numUsers := cr.u64()
	numMerchants := cr.u64()
	numEdges := cr.u64()
	if cr.err == nil && (numUsers > uint64(MaxNodeID)+1 || numMerchants > uint64(MaxNodeID)+1) {
		return nil, fmt.Errorf("bipartite: CSR snapshot declares %d users / %d merchants, beyond the id space", numUsers, numMerchants)
	}
	g := &Graph{
		userOff:  cr.offsets(int(numUsers) + 1),
		userAdj:  cr.adjacency(int(numEdges)),
		merchOff: cr.offsets(int(numMerchants) + 1),
		merchAdj: cr.adjacency(int(numEdges)),
	}
	sum := cr.sum
	stored := cr.u32raw()
	if cr.err != nil {
		return nil, fmt.Errorf("bipartite: reading CSR snapshot: %w", cr.err)
	}
	if stored != sum {
		return nil, fmt.Errorf("bipartite: CSR snapshot checksum mismatch: stored %#x, computed %#x", stored, sum)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("bipartite: CSR snapshot failed validation: %w", err)
	}
	return g, nil
}

// crcWriter streams fixed-width values through a scratch buffer, folding
// every byte into a running CRC32C. The first error sticks.
type crcWriter struct {
	w   io.Writer
	buf []byte
	sum uint32
	err error
}

func (c *crcWriter) write(p []byte) {
	if c.err != nil {
		return
	}
	c.sum = crc32.Update(c.sum, castagnoli, p)
	_, c.err = c.w.Write(p)
}

func (c *crcWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	c.write(b[:])
}

// u32raw writes v without folding it into the checksum — the trailer itself.
func (c *crcWriter) u32raw(v uint32) {
	if c.err != nil {
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, c.err = c.w.Write(b[:])
}

func (c *crcWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.write(b[:])
}

// offsets writes exactly n entries of off as uint64, padding with zeros when
// the slice is shorter (a zero-value graph has nil offset arrays but still
// round-trips as the canonical empty layout).
func (c *crcWriter) offsets(off []int, n int) {
	for base := 0; base < n; base += codecChunk {
		end := min(base+codecChunk, n)
		buf := c.buf[:8*(end-base)]
		for i := base; i < end; i++ {
			v := uint64(0)
			if i < len(off) {
				v = uint64(off[i])
			}
			binary.LittleEndian.PutUint64(buf[8*(i-base):], v)
		}
		c.write(buf)
	}
}

func (c *crcWriter) adjacency(adj []uint32) {
	for base := 0; base < len(adj); base += codecChunk {
		end := min(base+codecChunk, len(adj))
		buf := c.buf[:4*(end-base)]
		for i := base; i < end; i++ {
			binary.LittleEndian.PutUint32(buf[4*(i-base):], adj[i])
		}
		c.write(buf)
	}
}

// crcReader mirrors crcWriter: fixed-width reads through a scratch buffer
// with a running CRC32C and a sticky error.
type crcReader struct {
	r   io.Reader
	buf []byte
	sum uint32
	err error
}

func (c *crcReader) read(p []byte) {
	if c.err != nil {
		return
	}
	if _, c.err = io.ReadFull(c.r, p); c.err != nil {
		return
	}
	c.sum = crc32.Update(c.sum, castagnoli, p)
}

func (c *crcReader) u32() uint32 {
	var b [4]byte
	c.read(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// u32raw reads the trailer without folding it into the checksum.
func (c *crcReader) u32raw() uint32 {
	if c.err != nil {
		return 0
	}
	var b [4]byte
	if _, c.err = io.ReadFull(c.r, b[:]); c.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b[:])
}

func (c *crcReader) u64() uint64 {
	var b [8]byte
	c.read(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// offsets reads n uint64 entries into an int slice, growing chunk by chunk
// so a corrupt length fails on EOF before committing to one huge allocation.
func (c *crcReader) offsets(n int) []int {
	if c.err != nil || n <= 0 {
		return nil
	}
	out := make([]int, 0, min(n, codecChunk))
	for base := 0; base < n && c.err == nil; base += codecChunk {
		end := min(base+codecChunk, n)
		buf := c.buf[:8*(end-base)]
		c.read(buf)
		if c.err != nil {
			return nil
		}
		for i := 0; i < end-base; i++ {
			out = append(out, int(binary.LittleEndian.Uint64(buf[8*i:])))
		}
	}
	return out
}

func (c *crcReader) adjacency(n int) []uint32 {
	if c.err != nil || n < 0 {
		return nil
	}
	out := make([]uint32, 0, min(n, codecChunk))
	for base := 0; base < n && c.err == nil; base += codecChunk {
		end := min(base+codecChunk, n)
		buf := c.buf[:4*(end-base)]
		c.read(buf)
		if c.err != nil {
			return nil
		}
		for i := 0; i < end-base; i++ {
			out = append(out, binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	return out
}
