package bipartite

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func randomCodecGraph(seed int64, users, merchants, n int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilderSized(users, merchants, n)
	for i := 0; i < n; i++ {
		b.AddEdge(uint32(rng.Intn(users)), uint32(rng.Intn(merchants)))
	}
	return b.Build()
}

func TestCSRCodecRoundTrip(t *testing.T) {
	graphs := map[string]*Graph{
		"empty":    {},
		"one edge": mustFromEdges(t, 1, 1, []Edge{{U: 0, V: 0}}),
		// Trailing isolated nodes: declared sizes beyond the largest id must
		// survive the round trip (the edge-list text format cannot express
		// them; the CSR codec must).
		"isolated tail": mustFromEdges(t, 10, 7, []Edge{{U: 2, V: 3}}),
		"random":        randomCodecGraph(1, 300, 200, 5000),
	}
	for name, g := range graphs {
		var buf bytes.Buffer
		if err := WriteCSR(&buf, g); err != nil {
			t.Fatalf("%s: WriteCSR: %v", name, err)
		}
		got, err := ReadCSR(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: ReadCSR: %v", name, err)
		}
		if got.NumUsers() != g.NumUsers() || got.NumMerchants() != g.NumMerchants() || got.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: shape %v, want %v", name, got, g)
		}
		if !reflect.DeepEqual(got.EdgeList(), g.EdgeList()) {
			t.Fatalf("%s: edge lists differ after round trip", name)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("%s: decoded graph invalid: %v", name, err)
		}
		// Canonical encoding: re-encoding the decoded graph is byte-identical.
		var buf2 bytes.Buffer
		if err := WriteCSR(&buf2, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("%s: encoding is not canonical", name)
		}
	}
}

// TestCSRCodecDetectsCorruption flips every byte of a small encoding in turn;
// each mutation must be rejected (checksum, magic, format, size sanity, or
// CSR validation — never a silently wrong graph).
func TestCSRCodecDetectsCorruption(t *testing.T) {
	g := randomCodecGraph(2, 20, 15, 60)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	ref := g.EdgeList()
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x5a
		got, err := ReadCSR(bytes.NewReader(mut))
		if err == nil && reflect.DeepEqual(got.EdgeList(), ref) &&
			got.NumUsers() == g.NumUsers() && got.NumMerchants() == g.NumMerchants() {
			// The mutation round-tripped to the same graph — impossible for a
			// single flipped byte under CRC32C unless the reader ignored it.
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
}

func TestCSRCodecTruncation(t *testing.T) {
	g := randomCodecGraph(3, 30, 30, 100)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for _, cut := range []int{0, 1, 7, len(enc) / 2, len(enc) - 1} {
		if _, err := ReadCSR(bytes.NewReader(enc[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", cut)
		}
	}
}

func TestCSRCodecBadHeader(t *testing.T) {
	g := randomCodecGraph(4, 5, 5, 10)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xff // magic
	if _, err := ReadCSR(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: %v", err)
	}
	bad = append([]byte(nil), enc...)
	bad[4] = 99 // format version
	if _, err := ReadCSR(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "format") {
		t.Fatalf("bad format: %v", err)
	}
}

func TestReadEdgesMaxTagsIDRange(t *testing.T) {
	_, err := ReadEdgesMax(strings.NewReader("1\t999\n"), 10)
	if !errors.Is(err, ErrIDRange) {
		t.Fatalf("id-bound error = %v, want ErrIDRange", err)
	}
	_, err = ReadEdgesMax(strings.NewReader("1\tnope\n"), 10)
	if err == nil || errors.Is(err, ErrIDRange) {
		t.Fatalf("parse error must not be tagged ErrIDRange: %v", err)
	}
}
