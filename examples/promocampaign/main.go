// Promo-campaign scenario: the workload from the paper's introduction — an
// e-commerce platform launches a discount campaign, fraud rings register
// account batches to farm the discounts, and the risk team needs a ranked
// fraud list sized to its manual-review budget.
//
// The example generates the synthetic Table I analogue of Dataset #1,
// runs ENSEMFDET, sweeps the vote threshold to match a review budget, and
// scores the result against the blacklist ground truth.
//
//	go run ./examples/promocampaign
package main

import (
	"fmt"
	"log"

	"ensemfdet"
	"ensemfdet/internal/datagen"
	"ensemfdet/internal/eval"
)

func main() {
	// Dataset #1 at 1% of the paper's scale: ~4.5k users, ~2.3k merchants.
	ds, err := datagen.GeneratePreset(datagen.Dataset1, 0.01, 7)
	if err != nil {
		log.Fatal(err)
	}
	st := ds.Stats()
	fmt.Printf("%s: %d users (%d blacklisted), %d merchants, %d edges\n",
		st.Name, st.Users, st.FraudPINs, st.Merchants, st.Edges)

	det, err := ensemfdet.NewDetector(ensemfdet.Config{
		NumSamples:  40,
		SampleRatio: 0.1,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	votes, err := det.Votes(ds.Graph)
	if err != nil {
		log.Fatal(err)
	}

	// The risk team can review ~300 accounts per day. Walk the threshold
	// down until the detection set fits the budget — the continuous control
	// FRAUDAR's block outputs cannot give (paper §V-C1).
	const reviewBudget = 300
	chosen := votes.NumSamples
	for t := votes.NumSamples; t >= 1; t-- {
		if votes.CountUsersAt(t) > reviewBudget {
			break
		}
		chosen = t
	}
	detected := votes.AcceptUsers(chosen)
	fmt.Printf("budget %d reviews -> threshold T=%d flags %d accounts\n",
		reviewBudget, chosen, len(detected))

	m := eval.Evaluate(ds.Labels, detected)
	fmt.Printf("against the blacklist: %v\n", m)

	// How many of the flags are in planted rings (vs blacklist noise)?
	planted := make(map[uint32]bool)
	for _, u := range ds.TrueFraudUsers {
		planted[u] = true
	}
	inRings := 0
	for _, u := range detected {
		if planted[u] {
			inRings++
		}
	}
	fmt.Printf("%d/%d flagged accounts belong to planted fraud rings\n", inRings, len(detected))
}
