// Sampler study: reproduce the reasoning of paper §IV-A and Figure 5 on a
// single dataset — which side of a bipartite graph should one-side node
// sampling draw, and how do the four structural samplers compare?
//
//	go run ./examples/samplerstudy
package main

import (
	"fmt"
	"log"

	"ensemfdet"
	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/datagen"
	"ensemfdet/internal/eval"
)

func main() {
	ds, err := datagen.GeneratePreset(datagen.Dataset3, 0.004, 7)
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph
	fmt.Printf("%s at 0.4%% scale: %d users, %d merchants, %d edges\n",
		ds.Name, g.NumUsers(), g.NumMerchants(), g.NumEdges())

	// The paper's §IV-A3 side-selection rule: sample the side with the
	// higher average degree to retain dense topology.
	du := g.AvgDegree(bipartite.UserSide)
	dv := g.AvgDegree(bipartite.MerchantSide)
	fmt.Printf("Davg(PIN)=%.2f  Davg(Merchant)=%.2f -> ONS should sample the %s side\n",
		du, dv, map[bool]string{true: "merchant", false: "user"}[dv > du])

	for _, kind := range []ensemfdet.SamplerKind{
		ensemfdet.RandomEdgeSampling,
		ensemfdet.MerchantNodeSampling,
		ensemfdet.UserNodeSampling,
		ensemfdet.TwoSideNodeSampling,
	} {
		det, err := ensemfdet.NewDetector(ensemfdet.Config{
			Sampler:     kind,
			NumSamples:  32,
			SampleRatio: 0.1,
			Seed:        7,
		})
		if err != nil {
			log.Fatal(err)
		}
		votes, err := det.Votes(g)
		if err != nil {
			log.Fatal(err)
		}
		// Evaluate the full vote sweep and report the best F1 point.
		var best eval.Metrics
		for t := 1; t <= votes.NumSamples; t++ {
			m := eval.Evaluate(ds.Labels, votes.AcceptUsers(t))
			if m.F1 > best.F1 {
				best = m
			}
		}
		fmt.Printf("%-14s best F1 %.3f (P=%.3f R=%.3f at %d detected)\n",
			kind, best.F1, best.Precision, best.Recall, best.Detected)
	}
}
