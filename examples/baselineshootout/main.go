// Baseline shootout: the paper's Figure 3 in miniature — ENSEMFDET against
// FRAUDAR, SPOKEN and FBOX on one synthetic dataset, with per-method
// operating points and timing.
//
//	go run ./examples/baselineshootout
package main

import (
	"fmt"
	"log"
	"time"

	"ensemfdet"
	"ensemfdet/internal/datagen"
	"ensemfdet/internal/eval"
	"ensemfdet/internal/fbox"
	"ensemfdet/internal/fraudar"
	"ensemfdet/internal/spoken"
)

func main() {
	ds, err := datagen.GeneratePreset(datagen.Dataset1, 0.01, 7)
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph
	fmt.Printf("%s: %d users, %d merchants, %d edges, %d blacklisted\n\n",
		ds.Name, g.NumUsers(), g.NumMerchants(), g.NumEdges(), ds.Labels.NumFraud)

	// --- EnsemFDet: vote sweep ---
	start := time.Now()
	det, err := ensemfdet.NewDetector(ensemfdet.Config{NumSamples: 40, SampleRatio: 0.1, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	votes, err := det.Votes(g)
	if err != nil {
		log.Fatal(err)
	}
	ensT := time.Since(start)
	var ensBest eval.Metrics
	for t := 1; t <= votes.NumSamples; t++ {
		if m := eval.Evaluate(ds.Labels, votes.AcceptUsers(t)); m.F1 > ensBest.F1 {
			ensBest = m
		}
	}
	report("EnsemFDet", ensBest, ensT)

	// --- Fraudar: K block prefixes ---
	start = time.Now()
	fr := fraudar.Detect(g, fraudar.Config{K: 30})
	frT := time.Since(start)
	frBest := fr.Curve(ds.Labels).MaxF1().Metrics
	report("Fraudar", frBest, frT)

	// --- SPOKEN: eigenspoke scores ---
	start = time.Now()
	sp := spoken.Score(g, spoken.Config{Components: 25, Seed: 7})
	spT := time.Since(start)
	spBest := eval.ScoredCurve(ds.Labels, sp.UserScores, nil).MaxF1().Metrics
	report("SPOKEN", spBest, spT)

	// --- FBOX: reconstruction residuals ---
	start = time.Now()
	fb := fbox.Score(g, fbox.Config{K: 25, Seed: 7, MinDegree: 2})
	fbT := time.Since(start)
	fbBest := eval.ScoredCurve(ds.Labels, fb.UserScores, nil).MaxF1().Metrics
	report("FBox", fbBest, fbT)

	fmt.Println("\n(the heuristics should dominate the spectral methods, as in Fig. 3)")
}

func report(name string, m eval.Metrics, d time.Duration) {
	fmt.Printf("%-10s best F1 %.3f (P=%.3f R=%.3f, %d detected)  in %v\n",
		name, m.F1, m.Precision, m.Recall, m.Detected, d.Round(time.Millisecond))
}
