// Quickstart: build a small "who buy-from where" graph in memory, run
// ENSEMFDET, and print the fraud sets at a few vote thresholds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ensemfdet"
)

func main() {
	// Honest traffic: 1000 shoppers spread over 500 merchants.
	rng := rand.New(rand.NewSource(42))
	b := ensemfdet.NewGraphBuilder()
	for i := 0; i < 3000; i++ {
		b.AddEdge(uint32(rng.Intn(1000)), uint32(rng.Intn(500)))
	}

	// A fraud ring: 40 accounts registered in a batch (ids 1000-1039), all
	// hammering the same 12 colluding merchants (ids 500-511) during a
	// promotion window.
	for u := 0; u < 40; u++ {
		for v := 0; v < 12; v++ {
			b.AddEdge(uint32(1000+u), uint32(500+v))
		}
	}
	g := b.Build()
	fmt.Printf("graph: %d users, %d merchants, %d edges\n",
		g.NumUsers(), g.NumMerchants(), g.NumEdges())

	// The zero-ish config is the paper's setting (RES, N=80, S=0.1); we
	// shrink N because the graph is tiny.
	det, err := ensemfdet.NewDetector(ensemfdet.Config{
		NumSamples:  20,
		SampleRatio: 0.2,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Votes lets us explore several thresholds from one ensemble run.
	votes, err := det.Votes(g)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range []int{5, 10, 15} {
		users := votes.AcceptUsers(t)
		caught := 0
		for _, u := range users {
			if u >= 1000 {
				caught++
			}
		}
		fmt.Printf("T=%2d: flagged %3d users, %d/40 of the planted ring\n",
			t, len(users), caught)
	}

	// Single-shot detection at one threshold.
	res, err := det.Detect(g, 15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final detection at T=%d: %d users, %d merchants\n",
		res.Threshold, len(res.Users), len(res.Merchants))
}
