// Command ensemfdetd is the ENSEMFDET streaming detection daemon: a
// long-running HTTP service that ingests purchase edges incrementally and
// answers fraud-detection queries from cached ensemble votes.
//
// Usage:
//
//	ensemfdetd [-addr :8080] [-load transactions.tsv] [-shards 0] [-max-concurrent 2] [-cache-size 32]
//	           [-ingest-queue 256] [-pprof-addr ""]
//	           [-data-dir /var/lib/ensemfdetd] [-fsync always] [-snapshot-every 16777216]
//	           [-window-age 720h] [-window-versions 0] [-window-max-edges 0] [-retire-every 1s]
//	           [-serve-replication] [-follow http://primary:8080] [-max-ready-lag 8] [-version]
//
// The API (JSON unless noted):
//
//	POST /v1/edges   {"edges": [[u,v], ...]}            batched ingest
//	POST /v1/detect  {"t":40,"n":80,"s":0.1,            run/serve a detection
//	                  "sampler":"RES","seed":1}
//	GET  /v1/votes   ?n=&s=&sampler=&seed=&min=&top=    ranked vote counts
//	GET  /v1/stats                                      graph + cache + shard + build + persist + repl counters
//	GET  /metrics                                       the same, Prometheus text format
//	GET  /healthz                                       liveness
//	GET  /readyz                                        readiness (recovery done; follower lag within bound)
//	GET  /v1/repl/...                                   WAL shipping (only with -serve-replication)
//	POST /v1/admin/promote                              promote this follower to primary (durable followers)
//	POST /v1/admin/follow    {"primary": url}           re-point this follower at a new primary
//
// Detection results are cached per (graph version, config): sweeping the
// vote threshold T, re-querying, or ranking against an unchanged graph
// never re-runs the ensemble. Ingesting new (non-duplicate) edges bumps the
// graph version and naturally invalidates the cache.
//
// Ingest is sharded across -shards user-range partitions (0 picks a power
// of two near GOMAXPROCS) so concurrent producers scale across cores, and
// snapshots are built incrementally from per-shard deltas; /v1/stats and
// /metrics expose per-shard sizes and the delta-vs-full build counts. Shard
// count never affects detection results.
//
// With a window flag set the daemon serves a sliding window over the edge
// stream instead of growing forever: a background pass every -retire-every
// retires edges older than -window-age (wall clock) or -window-versions
// (ingest batches), and -window-max-edges caps the live set by retiring
// the oldest edges. Retired edges leave the dedup set — a re-observed
// purchase re-ingests with fresh recency — and /v1/stats gains a "window"
// section (ensemfdetd_window_* in /metrics).
//
// With -data-dir set the daemon is durable: every accepted ingest batch is
// framed into a checksummed write-ahead log (fsynced before the HTTP 200
// under -fsync always), edge retirements are framed as tombstone records in
// the same log (format v2; pre-windowing v1 segments still replay), binary
// CSR snapshots recording the window watermark are written in the background
// once the log grows past -snapshot-every bytes, and a restart — graceful
// or kill -9 — recovers the same graph, version and watermark, truncating a
// torn WAL tail from a mid-write crash instead of refusing to start. No
// restart resurrects an expired edge.
//
// A durable daemon started with -serve-replication is a replication primary:
// it ships its snapshot and WAL to followers over GET /v1/repl/. A daemon
// started with -follow <primary-url> is a read-only follower: it bootstraps
// from the primary (or recovers locally, when -data-dir already holds
// state), then tails the primary's log continuously, applying every record
// at its exact version — its graph, and therefore its votes, are
// byte-identical to the primary's at every version. Followers reject writes
// with 403, report ready on /readyz only while within -max-ready-lag
// versions of the primary, and expose lag in /v1/stats and
// ensemfdetd_repl_* metrics.
//
// Failover is epoch-fenced. A durable follower can be promoted at runtime
// (POST /v1/admin/promote): it stops tailing, fsyncs the next epoch (term)
// number with write ownership, and starts accepting ingest and serving
// /v1/repl/ itself. Other followers are re-pointed at the new primary with
// POST /v1/admin/follow; the epoch machinery reconciles histories across the
// transition. Every replication exchange carries the epoch both ways, so a
// deposed primary that hears a higher term — from a follower's request, or
// from its own data dir on reboot — durably drops write ownership and
// rejects ingest with 409 naming the ruling epoch; it keeps serving reads
// and replication so the new primary's followers can still chain through a
// reboot. During the promote window the node reports not-ready on /readyz.
// See the README's Failover section for the runbook.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for up to -drain seconds, then flushing a final snapshot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	"ensemfdet"
)

// buildVersion is stamped at link time via
// -ldflags "-X main.buildVersion=v1.2.3"; an unstamped module-aware build
// falls back to the version embedded by the Go toolchain.
var buildVersion = "dev"

func versionString() string {
	if buildVersion != "dev" {
		return buildVersion
	}
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return buildVersion
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ensemfdetd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		load     = flag.String("load", "", "optional edge-list file to ingest at startup")
		shards   = flag.Int("shards", 0, "ingest shard count, rounded up to a power of two (0 = near GOMAXPROCS)")
		maxConc  = flag.Int("max-concurrent", 2, "maximum concurrent ensemble runs")
		cacheCap = flag.Int("cache-size", 32, "maximum cached vote sets")
		incDelta = flag.Float64("incremental-max-delta", 0.25, "run detection incrementally when the ingest delta is at most this fraction of the graph's edges (negative = always cold)")
		maxNode  = flag.Uint("max-node-id", 0, "largest accepted node id (0 = default 2^26)")
		ingestQ  = flag.Int("ingest-queue", 256, "ingest admission queue: in-flight batches past this are shed with 429 (0 = unbounded)")
		pprofAdr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		dataDir  = flag.String("data-dir", "", "durability directory (WAL + snapshots); empty = memory-only")
		fsync    = flag.String("fsync", "always", "WAL flush policy: always (ack after fsync) or never (OS page cache)")
		snapEvry = flag.Int64("snapshot-every", 16<<20, "WAL growth in bytes that triggers a background snapshot")
		winAge   = flag.Duration("window-age", 0, "retire edges older than this wall-clock age (0 = unbounded)")
		winVers  = flag.Uint64("window-versions", 0, "keep only the newest N ingest versions of edges (0 = unbounded)")
		winEdges = flag.Int("window-max-edges", 0, "cap live edges, retiring oldest ones past it (0 = unbounded)")
		retireEv = flag.Duration("retire-every", time.Second, "period of the window retire pass (only with a window flag set)")
		srvRepl  = flag.Bool("serve-replication", false, "serve the WAL-shipping endpoints under /v1/repl/ (requires -data-dir)")
		follow   = flag.String("follow", "", "run as a read-only follower of this primary URL")
		readyLag = flag.Uint64("max-ready-lag", 8, "follower /readyz fails while more than this many versions behind the primary")
		showVer  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("ensemfdetd", versionString())
		return nil
	}
	if *maxNode > ensemfdet.MaxNodeID {
		return fmt.Errorf("-max-node-id %d exceeds the id space (max %d)", *maxNode, uint64(ensemfdet.MaxNodeID))
	}
	if *shards < 0 || *shards > ensemfdet.MaxStreamShards {
		return fmt.Errorf("-shards %d out of range [0,%d]", *shards, ensemfdet.MaxStreamShards)
	}
	fsyncPolicy, err := ensemfdet.ParseFsyncPolicy(*fsync)
	if err != nil {
		return err
	}
	if *snapEvry <= 0 {
		return fmt.Errorf("-snapshot-every must be positive, got %d", *snapEvry)
	}
	if *winAge < 0 || *winEdges < 0 {
		return fmt.Errorf("-window-age and -window-max-edges must be non-negative")
	}
	window := ensemfdet.WindowPolicy{MaxAge: *winAge, MaxVersions: *winVers, MaxEdges: *winEdges}
	if window.Enabled() && *retireEv <= 0 {
		return fmt.Errorf("-retire-every must be positive with a window set, got %v", *retireEv)
	}
	if *srvRepl && *dataDir == "" {
		return errors.New("-serve-replication requires -data-dir (the WAL and snapshots are what is shipped)")
	}
	if *follow != "" {
		// A follower's state is the primary's replicated history — flags that
		// would mutate it locally are wiring mistakes, not configurations.
		if *srvRepl {
			return errors.New("-follow and -serve-replication are mutually exclusive (cascading replication is not supported)")
		}
		if window.Enabled() {
			return errors.New("-follow is incompatible with window flags: expiry replicates from the primary as tombstones")
		}
		if *load != "" {
			return errors.New("-follow is incompatible with -load: a follower's edges come from its primary")
		}
	}

	// The signal context exists before any boot work so a SIGINT aborts even
	// a long follower bootstrap download.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	sg := ensemfdet.NewStreamGraphSharded(*shards)
	log.Printf("ingest sharding: %d shards", sg.NumShards())
	if window.Enabled() {
		// Install the policy before recovery: recovery replays explicit
		// tombstones and never re-evaluates the policy, so this only arms
		// the post-boot retire ticker.
		sg.SetWindow(window)
		log.Printf("window: age=%v versions=%d max-edges=%d (retire every %v)",
			*winAge, *winVers, *winEdges, *retireEv)
	}

	var store *ensemfdet.PersistStore
	if *dataDir != "" {
		if *follow != "" && ensemfdet.ReplNeedsBootstrap(*dataDir) {
			// No usable local state: ship the primary's snapshot + WAL into
			// the data dir so the normal recovery below reproduces the
			// primary's durable state version-exactly.
			log.Printf("bootstrapping %s from %s", *dataDir, *follow)
			if err := ensemfdet.ReplDownloadInto(ctx, nil, *follow, *dataDir, log.Printf); err != nil {
				return err
			}
		}
		// Recover before installing the journal, so replayed batches are
		// not re-appended to the log they came from.
		store, err = ensemfdet.OpenPersist(*dataDir, ensemfdet.PersistOptions{
			Fsync:         fsyncPolicy,
			SnapshotBytes: *snapEvry,
		})
		if err != nil {
			return err
		}
		rec, err := store.Recover(sg)
		if err != nil {
			return fmt.Errorf("recovering %s: %w", *dataDir, err)
		}
		log.Printf("recovered %s: snapshot version %d (%d edges), replayed %d WAL records (%d edges) → graph version %d (fsync=%s)",
			*dataDir, rec.SnapshotVersion, rec.SnapshotEdges, rec.ReplayedRecords, rec.ReplayedEdges, rec.Version, fsyncPolicy)
		if *follow == "" {
			// A follower journals replicated records itself at their explicit
			// primary versions; the graph-side journal hook would re-stamp
			// them with local versions.
			sg.SetJournal(store)
		}
		store.SetSource(sg)
	}

	if *ingestQ < 0 {
		return fmt.Errorf("-ingest-queue must be non-negative, got %d", *ingestQ)
	}
	engine := ensemfdet.NewDetectEngine(sg, ensemfdet.EngineOptions{
		MaxConcurrent:            *maxConc,
		MaxCacheEntries:          *cacheCap,
		MaxNodeID:                uint32(*maxNode),
		IncrementalMaxDeltaRatio: *incDelta,
		IngestQueue:              *ingestQ,
	})
	if store != nil {
		engine.AttachPersist(store)
	}

	hcfg := ensemfdet.HTTPHandlerConfig{Version: versionString()}
	var (
		follower *ensemfdet.ReplFollower // memory-only follower: plain tailer
		node     *ensemfdet.ReplNode     // durable follower: failover-capable
	)
	switch {
	case *follow != "" && store != nil:
		// A durable follower runs under the failover node so it can be
		// promoted to primary (POST /v1/admin/promote) or re-pointed at a new
		// one (POST /v1/admin/follow) without a restart. The read-only guard,
		// readiness, and the replication surface all track the live role.
		node, err = ensemfdet.NewReplNode(ensemfdet.ReplNodeConfig{
			Store:      store,
			Graph:      sg,
			MaxLag:     *readyLag,
			FlushCache: engine.FlushCache,
		})
		if err != nil {
			return err
		}
		if epoch, _, owned := store.Epoch(); owned && epoch > 0 {
			// A promoted primary that crashed and was restarted with its old
			// -follow flag: the fence fsync made the promotion durable, so the
			// node resumes the role it won rather than re-bootstrapping against
			// a primary it already deposed.
			log.Printf("store owns epoch %d: resuming as primary (ignoring -follow %s)", epoch, *follow)
			if err := node.BecomePrimary(); err != nil {
				return err
			}
		} else if err := node.Follow(ctx, *follow); err != nil {
			return err
		}
		hcfg.ReadOnlyFn = func() bool { return node.Role() != "primary" }
		hcfg.PrimaryURLFn = node.PrimaryURL
		hcfg.Ready = node.Ready
		hcfg.Repl = node.ReplHandler()
		hcfg.Admin = node.AdminHandler()
		engine.AttachRepl(nodeReplStats(node))
	case *follow != "":
		// Memory-only follower: nothing durable to fence, so no failover
		// surface — just the tailer, seeded from the primary's snapshot.
		follower, err = ensemfdet.NewReplFollower(ensemfdet.ReplFollowerConfig{
			Primary:    *follow,
			Graph:      sg,
			FlushCache: engine.FlushCache,
		})
		if err != nil {
			return err
		}
		if err := follower.Bootstrap(ctx); err != nil {
			return fmt.Errorf("bootstrapping from %s: %w", *follow, err)
		}
		log.Printf("following %s from version %d", *follow, sg.Version())
		hcfg.ReadOnly = true
		hcfg.PrimaryURL = *follow
		hcfg.Ready = func() (bool, string) { return follower.Ready(*readyLag) }
		engine.AttachRepl(func() *ensemfdet.ReplStats {
			fs := follower.Stats()
			ready, _ := follower.Ready(*readyLag)
			return &ensemfdet.ReplStats{
				Role:              "follower",
				Primary:           fs.Primary,
				PrimaryVersion:    fs.PrimaryVersion,
				AppliedVersion:    fs.AppliedVersion,
				VersionsBehind:    fs.VersionsBehind,
				SecondsBehind:     fs.SecondsBehind,
				RecordsApplied:    fs.RecordsApplied,
				TombstonesApplied: fs.TombstonesApplied,
				Resyncs:           fs.Resyncs,
				Reconnects:        fs.Reconnects,
				JournalErrors:     fs.JournalErrors,
				Ready:             ready,
				BytesShipped:      fs.BytesShipped,
				Epoch:             fs.Epoch,
				EpochAdopts:       fs.EpochAdopts,
				EpochResyncs:      fs.EpochResyncs,
				EpochRejects:      fs.EpochRejects,
				BackoffSeconds:    fs.BackoffSeconds,
			}
		})
	case *srvRepl:
		if epoch, _, owned := store.Epoch(); !owned {
			// The data dir says a higher term exists: this process was deposed
			// (or cloned from a deposed primary). It still serves reads and
			// replication, but every ingest will be refused with 409 — make
			// the operator's next step unmissable.
			log.Printf("WARNING: store is FENCED at epoch %d — a newer primary owns this timeline; "+
				"ingest is rejected. Restart with -follow <new-primary> to rejoin.", epoch)
		}
		primary := ensemfdet.NewReplPrimary(ensemfdet.ReplPrimaryConfig{
			Store:   store,
			Version: sg.Version,
		})
		hcfg.Repl = primary.Handler()
		engine.AttachRepl(func() *ensemfdet.ReplStats {
			ps := primary.Stats()
			epoch, _, owned := store.Epoch()
			return &ensemfdet.ReplStats{
				Role:         "primary",
				Ready:        true,
				BytesShipped: ps.TailBytes + ps.FileBytes,
				TailRequests: ps.TailRequests,
				TailRecords:  ps.TailRecords,
				FilesShipped: ps.FilesShipped,
				Epoch:        epoch,
				Fenced:       !owned,
				EpochFences:  ps.EpochFences,
			}
		})
		log.Printf("serving replication under /v1/repl/")
	}

	if *load != "" {
		if err := loadEdges(engine, *load); err != nil {
			return err
		}
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: logRequests(ensemfdet.NewHTTPHandlerWith(engine, hcfg)),
		// ReadTimeout bounds the whole request read so a client trickling
		// a body cannot pin a goroutine forever; it does not limit handler
		// execution, so long cold detections are unaffected (WriteTimeout
		// stays off for the same reason).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	var tailDone chan struct{}
	if follower != nil {
		tailDone = make(chan struct{})
		go func() {
			defer close(tailDone)
			follower.Run(ctx)
		}()
	}

	var retireDone chan struct{}
	if window.Enabled() {
		// The retire ticker enforces the age bounds (the engine itself kicks
		// an extra pass when ingest blows through a count bound). A journal
		// failure inside a pass degrades the store exactly like a failed
		// append — log it; the next covering snapshot heals it. The done
		// channel lets shutdown join an in-flight pass before closing the
		// persistence store: a retirement that commits after the final
		// snapshot cut with its tombstone refused by a closed WAL would
		// resurrect the expired edges on the next boot.
		retireDone = make(chan struct{})
		go func() {
			defer close(retireDone)
			t := time.NewTicker(*retireEv)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if res, ok := engine.RetireNow(); ok && res.Err != nil {
						log.Printf("retire pass at version %d: %v", res.Version, res.Err)
					}
				}
			}
		}()
	}

	var pprofSrv *http.Server
	if *pprofAdr != "" {
		// The profiler gets its own listener and mux so it is never reachable
		// through the public API address (which may be exposed) and so a stuck
		// profile stream cannot tie up an API connection slot. Registering the
		// handlers on a private mux — rather than importing for the
		// DefaultServeMux side effect — keeps the public mux clean even if
		// some future dependency serves DefaultServeMux.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv = &http.Server{Addr: *pprofAdr, Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			log.Printf("pprof listening on %s", *pprofAdr)
			if err := pprofSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				// Diagnostics must never take the daemon down; the API keeps
				// serving without the profiler.
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("ensemfdetd listening on %s", *addr)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down, draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if pprofSrv != nil {
		_ = pprofSrv.Shutdown(shutdownCtx) // best effort; a hung profile stream must not block the drain
	}
	// The server has drained; join the retire ticker and the replication
	// tailer (their context is already canceled, but an in-flight pass or
	// apply must land its record before the WAL closes), then flush a final
	// snapshot and close the WAL so the next boot recovers without replay.
	if retireDone != nil {
		<-retireDone
	}
	if tailDone != nil {
		<-tailDone
	}
	if node != nil {
		// The failover node owns its tail goroutine; Close cancels and joins
		// it for the same land-before-WAL-close reason as tailDone above.
		node.Close()
	}
	if err := engine.Close(); err != nil {
		return fmt.Errorf("flushing persistence: %w", err)
	}
	return <-errc
}

// loadEdges performs the startup ingest. It honours the same id bound as
// /v1/edges, enforced while parsing: a stray huge id would otherwise commit
// the reader itself to O(max_id) allocations. Raw edges go straight into
// the stream graph — it dedups and builds the CSR on first snapshot, so no
// throwaway graph is constructed here. Only id-bound failures carry the
// -max-node-id hint; a missing or malformed file is its own problem, and
// suggesting a bigger id budget for it would send the operator the wrong way.
func loadEdges(engine *ensemfdet.DetectEngine, path string) error {
	edges, err := ensemfdet.ReadEdgesFile(path, engine.MaxNodeID())
	if err == nil {
		r, ierr := engine.Ingest(edges)
		if ierr == nil {
			log.Printf("loaded %s: %d edges added, %d duplicates (version %d)", path, r.Added, r.Duplicates, r.Version)
			return nil
		}
		err = ierr
	}
	if errors.Is(err, ensemfdet.ErrNodeIDRange) {
		return fmt.Errorf("%w (see -max-node-id)", err)
	}
	return err
}

// nodeReplStats adapts the failover node's role-dependent counters to the
// /v1/stats and /metrics shape. Promotions survive the role flip: the stats
// of the follower half are reported while tailing, the primary half's after
// a promote, and the epoch and promotion count in both.
func nodeReplStats(node *ensemfdet.ReplNode) func() *ensemfdet.ReplStats {
	return func() *ensemfdet.ReplStats {
		ready, _ := node.Ready()
		rs := &ensemfdet.ReplStats{
			Role:       node.Role(),
			Epoch:      node.Epoch(),
			Promotions: node.Promotions(),
			Ready:      ready,
		}
		if p := node.Primary(); p != nil {
			ps := p.Stats()
			rs.BytesShipped = ps.TailBytes + ps.FileBytes
			rs.TailRequests = ps.TailRequests
			rs.TailRecords = ps.TailRecords
			rs.FilesShipped = ps.FilesShipped
			rs.EpochFences = ps.EpochFences
			return rs
		}
		if f := node.Follower(); f != nil {
			fs := f.Stats()
			rs.Primary = fs.Primary
			rs.PrimaryVersion = fs.PrimaryVersion
			rs.AppliedVersion = fs.AppliedVersion
			rs.VersionsBehind = fs.VersionsBehind
			rs.SecondsBehind = fs.SecondsBehind
			rs.RecordsApplied = fs.RecordsApplied
			rs.TombstonesApplied = fs.TombstonesApplied
			rs.Resyncs = fs.Resyncs
			rs.Reconnects = fs.Reconnects
			rs.JournalErrors = fs.JournalErrors
			rs.BytesShipped = fs.BytesShipped
			rs.EpochAdopts = fs.EpochAdopts
			rs.EpochResyncs = fs.EpochResyncs
			rs.EpochRejects = fs.EpochRejects
			rs.BackoffSeconds = fs.BackoffSeconds
		}
		return rs
	}
}

// logRequests is a minimal access log; the daemon has no other middleware.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %v", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
