// Command ensemfdetd is the ENSEMFDET streaming detection daemon: a
// long-running HTTP service that ingests purchase edges incrementally and
// answers fraud-detection queries from cached ensemble votes.
//
// Usage:
//
//	ensemfdetd [-addr :8080] [-load transactions.tsv] [-shards 0] [-max-concurrent 2] [-cache-size 32]
//	           [-data-dir /var/lib/ensemfdetd] [-fsync always] [-snapshot-every 16777216]
//
// The API (JSON unless noted):
//
//	POST /v1/edges   {"edges": [[u,v], ...]}            batched ingest
//	POST /v1/detect  {"t":40,"n":80,"s":0.1,            run/serve a detection
//	                  "sampler":"RES","seed":1}
//	GET  /v1/votes   ?n=&s=&sampler=&seed=&min=&top=    ranked vote counts
//	GET  /v1/stats                                      graph + cache + shard + build + persist counters
//	GET  /metrics                                       the same, Prometheus text format
//	GET  /healthz                                       liveness
//
// Detection results are cached per (graph version, config): sweeping the
// vote threshold T, re-querying, or ranking against an unchanged graph
// never re-runs the ensemble. Ingesting new (non-duplicate) edges bumps the
// graph version and naturally invalidates the cache.
//
// Ingest is sharded across -shards user-range partitions (0 picks a power
// of two near GOMAXPROCS) so concurrent producers scale across cores, and
// snapshots are built incrementally from per-shard deltas; /v1/stats and
// /metrics expose per-shard sizes and the delta-vs-full build counts. Shard
// count never affects detection results.
//
// With -data-dir set the daemon is durable: every accepted ingest batch is
// framed into a checksummed write-ahead log (fsynced before the HTTP 200
// under -fsync always), binary CSR snapshots are written in the background
// once the log grows past -snapshot-every bytes, and a restart — graceful
// or kill -9 — recovers the same graph and version, truncating a torn WAL
// tail from a mid-write crash instead of refusing to start.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for up to -drain seconds, then flushing a final snapshot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ensemfdet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ensemfdetd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		load     = flag.String("load", "", "optional edge-list file to ingest at startup")
		shards   = flag.Int("shards", 0, "ingest shard count, rounded up to a power of two (0 = near GOMAXPROCS)")
		maxConc  = flag.Int("max-concurrent", 2, "maximum concurrent ensemble runs")
		cacheCap = flag.Int("cache-size", 32, "maximum cached vote sets")
		maxNode  = flag.Uint("max-node-id", 0, "largest accepted node id (0 = default 2^26)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		dataDir  = flag.String("data-dir", "", "durability directory (WAL + snapshots); empty = memory-only")
		fsync    = flag.String("fsync", "always", "WAL flush policy: always (ack after fsync) or never (OS page cache)")
		snapEvry = flag.Int64("snapshot-every", 16<<20, "WAL growth in bytes that triggers a background snapshot")
	)
	flag.Parse()
	if *maxNode > ensemfdet.MaxNodeID {
		return fmt.Errorf("-max-node-id %d exceeds the id space (max %d)", *maxNode, uint64(ensemfdet.MaxNodeID))
	}
	if *shards < 0 || *shards > ensemfdet.MaxStreamShards {
		return fmt.Errorf("-shards %d out of range [0,%d]", *shards, ensemfdet.MaxStreamShards)
	}
	fsyncPolicy, err := ensemfdet.ParseFsyncPolicy(*fsync)
	if err != nil {
		return err
	}
	if *snapEvry <= 0 {
		return fmt.Errorf("-snapshot-every must be positive, got %d", *snapEvry)
	}

	sg := ensemfdet.NewStreamGraphSharded(*shards)
	log.Printf("ingest sharding: %d shards", sg.NumShards())

	var store *ensemfdet.PersistStore
	if *dataDir != "" {
		// Recover before installing the journal, so replayed batches are
		// not re-appended to the log they came from.
		store, err = ensemfdet.OpenPersist(*dataDir, ensemfdet.PersistOptions{
			Fsync:         fsyncPolicy,
			SnapshotBytes: *snapEvry,
		})
		if err != nil {
			return err
		}
		rec, err := store.Recover(sg)
		if err != nil {
			return fmt.Errorf("recovering %s: %w", *dataDir, err)
		}
		log.Printf("recovered %s: snapshot version %d (%d edges), replayed %d WAL records (%d edges) → graph version %d (fsync=%s)",
			*dataDir, rec.SnapshotVersion, rec.SnapshotEdges, rec.ReplayedRecords, rec.ReplayedEdges, rec.Version, fsyncPolicy)
		sg.SetJournal(store)
		store.SetSource(sg)
	}

	engine := ensemfdet.NewDetectEngine(sg, ensemfdet.EngineOptions{
		MaxConcurrent:   *maxConc,
		MaxCacheEntries: *cacheCap,
		MaxNodeID:       uint32(*maxNode),
	})
	if store != nil {
		engine.AttachPersist(store)
	}
	if *load != "" {
		if err := loadEdges(engine, *load); err != nil {
			return err
		}
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: logRequests(ensemfdet.NewHTTPHandler(engine)),
		// ReadTimeout bounds the whole request read so a client trickling
		// a body cannot pin a goroutine forever; it does not limit handler
		// execution, so long cold detections are unaffected (WriteTimeout
		// stays off for the same reason).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("ensemfdetd listening on %s", *addr)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down, draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	// The server has drained: flush a final snapshot and close the WAL so
	// the next boot recovers without replay.
	if err := engine.Close(); err != nil {
		return fmt.Errorf("flushing persistence: %w", err)
	}
	return <-errc
}

// loadEdges performs the startup ingest. It honours the same id bound as
// /v1/edges, enforced while parsing: a stray huge id would otherwise commit
// the reader itself to O(max_id) allocations. Raw edges go straight into
// the stream graph — it dedups and builds the CSR on first snapshot, so no
// throwaway graph is constructed here. Only id-bound failures carry the
// -max-node-id hint; a missing or malformed file is its own problem, and
// suggesting a bigger id budget for it would send the operator the wrong way.
func loadEdges(engine *ensemfdet.DetectEngine, path string) error {
	edges, err := ensemfdet.ReadEdgesFile(path, engine.MaxNodeID())
	if err == nil {
		r, ierr := engine.Ingest(edges)
		if ierr == nil {
			log.Printf("loaded %s: %d edges added, %d duplicates (version %d)", path, r.Added, r.Duplicates, r.Version)
			return nil
		}
		err = ierr
	}
	if errors.Is(err, ensemfdet.ErrNodeIDRange) {
		return fmt.Errorf("%w (see -max-node-id)", err)
	}
	return err
}

// logRequests is a minimal access log; the daemon has no other middleware.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %v", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
