package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ensemfdet"
)

func testEngine(maxNodeID uint32) *ensemfdet.DetectEngine {
	return ensemfdet.NewDetectEngine(ensemfdet.NewStreamGraph(), ensemfdet.EngineOptions{MaxNodeID: maxNodeID})
}

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "edges.tsv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadEdgesHintOnlyOnIDBoundErrors pins the -load fix: the
// "see -max-node-id" hint belongs on id-bound failures alone — pointing an
// operator with a typo'd path at an id flag is actively misleading.
func TestLoadEdgesHintOnlyOnIDBoundErrors(t *testing.T) {
	eng := testEngine(100)

	err := loadEdges(eng, filepath.Join(t.TempDir(), "does-not-exist.tsv"))
	if err == nil {
		t.Fatal("missing file must fail")
	}
	if strings.Contains(err.Error(), "max-node-id") {
		t.Fatalf("file-not-found error carries the id-bound hint: %v", err)
	}

	err = loadEdges(eng, writeTemp(t, "1\tnot-a-number\n"))
	if err == nil || strings.Contains(err.Error(), "max-node-id") {
		t.Fatalf("parse error must fail without the id-bound hint: %v", err)
	}

	err = loadEdges(eng, writeTemp(t, "1\t2\n500\t2\n"))
	if err == nil || !strings.Contains(err.Error(), "max-node-id") {
		t.Fatalf("id-bound error must carry the hint: %v", err)
	}
	if !errors.Is(err, ensemfdet.ErrNodeIDRange) {
		t.Fatalf("id-bound error not tagged: %v", err)
	}
}

func TestLoadEdgesReportsDuplicates(t *testing.T) {
	eng := testEngine(0)
	if err := loadEdges(eng, writeTemp(t, "1\t2\n1\t2\n3\t4\n")); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.IngestStats.Added != 2 || st.IngestStats.Duplicates != 1 {
		t.Fatalf("load counted added=%d dups=%d, want 2/1", st.IngestStats.Added, st.IngestStats.Duplicates)
	}
}
