package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"ensemfdet/internal/analyze"
)

// vetConfig mirrors the JSON cmd/go writes for each package when driving a
// -vettool. Field names must match cmd/go's encoding exactly.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string // source import path -> canonical path
	PackageFile               map[string]string // canonical path -> export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// runUnitchecker analyzes the single package described by the vet.cfg file
// at cfgPath. Exit codes: 0 clean, 1 error, 2 diagnostics.
func runUnitchecker(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ensemfdetlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ensemfdetlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The suite exports no facts, but cmd/go requires the vetx output to
	// exist before it will cache the action — write it unconditionally.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "ensemfdetlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "ensemfdetlint:", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	var typeErrs []error
	tcfg := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(compiler, build.Default.GOARCH),
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := newTypesInfo()
	pkg, _ := tcfg.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, err := range typeErrs {
			fmt.Fprintln(os.Stderr, err)
		}
		return 1
	}

	n := runAnalyzers(cfg.ImportPath, fset, files, pkg, info, false)
	if n > 0 {
		return 2
	}
	return 0
}

// newTypesInfo allocates the full types.Info the analyzers rely on.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// runAnalyzers applies the whole suite to one loaded package and returns
// the number of diagnostics reported.
func runAnalyzers(path string, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, github bool) int {
	n := 0
	for _, a := range analyze.All() {
		pass := &analyze.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Path:      path,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analyze.Diagnostic) {
				n++
				report(d, fset, github)
			},
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "ensemfdetlint: %s: %v\n", a.Name, err)
			n++
		}
	}
	return n
}
