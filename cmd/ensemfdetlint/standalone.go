package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPkg is the subset of `go list -json` output the standalone driver
// needs.
type listPkg struct {
	Dir        string
	ImportPath string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	CgoFiles   []string
	Export     string
	ImportMap  map[string]string
	Error      *struct{ Err string }
	DepsErrors []*struct{ Err string }
}

// runStandalone resolves package patterns with `go list -e -export -json
// -deps`, analyzes every matched package, and exits 1 on any diagnostic or
// load failure (fail-closed). Unlike the vet path it sees only non-test
// files; CI uses `go vet -vettool` for the authoritative run.
func runStandalone(args []string) int {
	fs := flag.NewFlagSet("ensemfdetlint", flag.ContinueOnError)
	github := fs.Bool("github", false, "emit GitHub Actions ::error workflow commands")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ensemfdetlint [-github] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := listPackages(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ensemfdetlint:", err)
		return 1
	}

	// Export data from every listed package (deps included) feeds the
	// importer for the packages under analysis.
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	failures := 0
	for _, p := range pkgs {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			fmt.Fprintf(os.Stderr, "ensemfdetlint: %s: %s\n", p.ImportPath, p.Error.Err)
			failures++
			continue
		}
		if len(p.CgoFiles) > 0 {
			// cgo files need generated sources the driver does not have;
			// the repo has none, but fail closed rather than skip quietly.
			fmt.Fprintf(os.Stderr, "ensemfdetlint: %s: cgo packages are not supported standalone; use go vet -vettool\n", p.ImportPath)
			failures++
			continue
		}
		failures += analyzePkg(fset, p, exports, *github)
	}
	if failures > 0 {
		return 1
	}
	return 0
}

// listPackages shells out to the go tool for package resolution and export
// data, which works offline from the local build cache.
func listPackages(patterns []string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-export", "-json", "-deps"}, patterns...)...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// analyzePkg type-checks one package against its dependencies' export data
// and runs the suite. Returns the number of findings plus load errors.
func analyzePkg(fset *token.FileSet, p *listPkg, exports map[string]string, github bool) int {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ensemfdetlint:", err)
			return 1
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canonical, ok := p.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	var typeErrs []error
	tcfg := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := newTypesInfo()
	pkg, _ := tcfg.Check(p.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		for _, err := range typeErrs {
			fmt.Fprintln(os.Stderr, err)
		}
		return len(typeErrs)
	}
	return runAnalyzers(p.ImportPath, fset, files, pkg, info, github)
}
