// Command ensemfdetlint runs the repo's custom analyzer suite
// (internal/analyze: determinism, lockdiscipline, durability, senterr).
//
// It speaks two protocols:
//
//   - As a vettool. `go vet -vettool=$(pwd)/bin/ensemfdetlint ./...` drives
//     it through cmd/go's unitchecker protocol: cmd/go invokes the tool once
//     with -V=full (cache fingerprint), once with -flags (supported flags),
//     and then once per package with the path to a vet.cfg JSON file
//     describing the package and the export data of its dependencies. This
//     path type-checks test files too and is the authoritative gate in CI.
//
//   - Standalone. `ensemfdetlint [-github] ./...` shells out to
//     `go list -e -export -json -deps` and analyzes every matched
//     (non-dependency) package. -github switches diagnostics to GitHub
//     Actions `::error` workflow commands so findings annotate the PR diff.
//
// Exit codes follow the unitchecker convention: 0 clean, 1 driver error,
// 2 diagnostics reported (standalone mode folds both failure cases into 1,
// fail-closed).
package main

import (
	"crypto/sha256"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ensemfdet/internal/analyze"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			return printVersion()
		case args[0] == "-flags":
			// No tool-specific flags: cmd/go learns it can pass none.
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runUnitchecker(args[0])
		}
	}
	return runStandalone(args)
}

// printVersion emits the cache fingerprint line cmd/go demands from a
// vettool: name, a version, and a build ID derived from the executable
// bytes so rebuilding the tool invalidates vet's action cache.
func printVersion() int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ensemfdetlint:", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ensemfdetlint:", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, "ensemfdetlint:", err)
		return 1
	}
	fmt.Printf("ensemfdetlint version devel comments-go-here buildID=%02x\n", h.Sum(nil))
	return 0
}

// report prints one diagnostic. In github mode it uses a workflow command
// (stdout, which the runner scans); otherwise the conventional
// file:line:col form on stderr, which cmd/go relays verbatim.
func report(d analyze.Diagnostic, fset *token.FileSet, github bool) {
	pos := fset.Position(d.Pos)
	file := relPath(pos.Filename)
	if github {
		// Workflow-command fields must not contain newlines; messages don't.
		fmt.Printf("::error file=%s,line=%d,col=%d,title=%s::%s\n", file, pos.Line, pos.Column, d.Analyzer, d.Message)
		return
	}
	fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", file, pos.Line, pos.Column, d.Message, d.Analyzer)
}

// relPath shortens filenames to be relative to the working directory when
// possible — clickable locally, and required for GitHub annotations to
// attach to files in the checkout.
func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	rel, err := filepath.Rel(wd, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return name
	}
	return rel
}
