package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the lint binary into a temp dir and returns its path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ensemfdetlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building ensemfdetlint: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a synthetic module whose one package sits on the
// durability analyzer's internal/persist scope.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	pkgDir := filepath.Join(dir, "internal", "persist")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(dir, "go.mod"):             "module synthetic\n\ngo 1.24\n",
		filepath.Join(pkgDir, "persist.go"):      src,
		filepath.Join(dir, "main.go"):            "package main\n\nimport \"synthetic/internal/persist\"\n\nfunc main() { persist.Drop(\"x\") }\n",
		filepath.Join(pkgDir, "senterr.go"):      senterrSrc,
		filepath.Join(pkgDir, "senterr_test.go"): senterrTestSrc,
	}
	for name, content := range files {
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const dirtySrc = `package persist

import "os"

func Drop(path string) {
	os.Remove(path)
}
`

const cleanSrc = `package persist

import "os"

func Drop(path string) {
	//ensemfdet:durability-ok e2e fixture: the path is a scratch file
	os.Remove(path)
}
`

const senterrSrc = `package persist

import "io"

var ErrShut = io.ErrClosedPipe

func Shut(err error) bool { return err != nil }
`

// senterrTestSrc holds a sentinel comparison in a _test.go file: only the
// go vet path type-checks test files, so its finding proves test coverage.
const senterrTestSrc = `package persist

import (
	"io"
	"testing"
)

func TestShut(t *testing.T) {
	var err error
	if err == io.EOF {
		t.Fatal("eof")
	}
}
`

const cleanSenterrTestSrc = `package persist

import (
	"errors"
	"io"
	"testing"
)

func TestShut(t *testing.T) {
	var err error
	if errors.Is(err, io.EOF) {
		t.Fatal("eof")
	}
}
`

func runIn(t *testing.T, dir string, name string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return string(out), ee.ExitCode()
	}
	t.Fatalf("running %s %v: %v\n%s", name, args, err, out)
	return "", -1
}

func TestVettoolEndToEnd(t *testing.T) {
	bin := buildTool(t)

	dir := writeModule(t, dirtySrc)
	out, code := runIn(t, dir, "go", "vet", "-vettool="+bin, "./...")
	if code == 0 {
		t.Fatalf("go vet on a dirty module exited 0; want nonzero\n%s", out)
	}
	if !strings.Contains(out, "blessed helper") {
		t.Fatalf("go vet output missing the durability finding:\n%s", out)
	}
	if !strings.Contains(out, "sentinel error io.EOF") || !strings.Contains(out, "senterr_test.go") {
		t.Fatalf("go vet output missing the senterr finding from the test file:\n%s", out)
	}

	if err := os.WriteFile(filepath.Join(dir, "internal", "persist", "persist.go"), []byte(cleanSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "internal", "persist", "senterr_test.go"), []byte(cleanSenterrTestSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = runIn(t, dir, "go", "vet", "-vettool="+bin, "./...")
	if code != 0 {
		t.Fatalf("go vet on the annotated module exited %d; want 0\n%s", code, out)
	}
}

func TestStandaloneEndToEnd(t *testing.T) {
	bin := buildTool(t)

	dir := writeModule(t, dirtySrc)
	out, code := runIn(t, dir, bin, "./...")
	if code != 1 {
		t.Fatalf("standalone run on a dirty module exited %d; want 1\n%s", code, out)
	}
	if !strings.Contains(out, "blessed helper") {
		t.Fatalf("standalone output missing the durability finding:\n%s", out)
	}

	out, code = runIn(t, dir, bin, "-github", "./...")
	if code != 1 {
		t.Fatalf("standalone -github run exited %d; want 1\n%s", code, out)
	}
	if !strings.Contains(out, "::error file=") {
		t.Fatalf("-github output missing a workflow command:\n%s", out)
	}

	if err := os.WriteFile(filepath.Join(dir, "internal", "persist", "persist.go"), []byte(cleanSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = runIn(t, dir, bin, "./...")
	if code != 0 {
		t.Fatalf("standalone run on the annotated module exited %d; want 0\n%s", code, out)
	}
}
