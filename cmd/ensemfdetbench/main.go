// Command ensemfdetbench is a load harness for a live ensemfdetd: it soaks
// the daemon with concurrent edge ingest over a configurable id space
// (millions of distinct users) while issuing detections on a fixed cadence,
// and reports exact latency quantiles for both paths.
//
// Usage:
//
//	ensemfdetbench -addr http://127.0.0.1:8080 [-duration 60s]
//	               [-users 1000000] [-merchants 100000]
//	               [-ingest-workers 8] [-batch 256]
//	               [-detect-every 500ms] [-detect-n 16] [-detect-s 0.1] [-sampler RES] [-seed 1]
//	               [-out soak.json] [-bench]
//
// Ingest workers draw edges from a single global sequence: batch b covers
// user ids seq..seq+batch-1 modulo -users, so a run that ships at least
// -users edges has touched every distinct user id — coverage is arithmetic,
// not probabilistic. Merchant ids are a multiplicative hash of the sequence
// number, spreading edges across the merchant side without coordination.
//
// The harness speaks the daemon's backpressure contract: a 429 (admission
// queue full) is counted as shed — never as an error — and the worker backs
// off for the Retry-After hint before retrying. 5xx responses are counted
// separately; any of those is a daemon fault.
//
// Latencies are recorded per request and the quantiles computed exactly
// (sort, index) rather than through a sketch: a soak's sample counts are
// small enough that exactness is free, and p999 on an estimator is exactly
// the number one should not trust.
//
// Output is a JSON summary (stdout, or -out file). With -bench the summary
// is followed by go-bench-formatted lines (one metric per line) so the
// numbers can be committed to a BENCH_*.json baseline and diffed with
// benchstat like any other benchmark.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ensemfdetbench:", err)
		os.Exit(1)
	}
}

// summary is the machine-readable result. All latency fields are
// milliseconds; NaN (no samples) marshals as null via the jsonMS wrapper.
type summary struct {
	DurationSeconds float64      `json:"duration_seconds"`
	Users           int64        `json:"users"`
	DistinctUsers   int64        `json:"distinct_users"`
	Ingest          pathSummary  `json:"ingest"`
	Detect          pathSummary  `json:"detect"`
	EdgesSent       int64        `json:"edges_sent"`
	EdgesPerSecond  float64      `json:"edges_per_second"`
	FinalStats      *daemonStats `json:"daemon,omitempty"`
}

type pathSummary struct {
	Requests int64  `json:"requests"`
	Shed429  int64  `json:"shed_429"`
	Errors   int64  `json:"errors"` // 5xx and transport failures
	P50Ms    jsonMS `json:"p50_ms"`
	P99Ms    jsonMS `json:"p99_ms"`
	P999Ms   jsonMS `json:"p999_ms"`
	MaxMs    jsonMS `json:"max_ms"`
}

// jsonMS is a float64 that marshals NaN as null instead of failing, so an
// empty latency series (e.g. a detect cadence longer than the soak) does not
// abort the report.
type jsonMS float64

func (v jsonMS) MarshalJSON() ([]byte, error) {
	f := float64(v)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return []byte("null"), nil
	}
	return []byte(strconv.FormatFloat(f, 'f', 3, 64)), nil
}

// daemonStats is the slice of the daemon's /v1/stats the soak report quotes
// back: enough to cross-check the client-side counts against the server's.
type daemonStats struct {
	Ingest struct {
		Batches    uint64 `json:"batches"`
		Added      uint64 `json:"added"`
		Shed       uint64 `json:"shed"`
		QueueDepth int    `json:"queue_depth"`
		QueueBound int    `json:"queue_bound"`
	} `json:"ingest"`
	Graph struct {
		NumUsers     int `json:"num_users"`
		NumMerchants int `json:"num_merchants"`
		NumEdges     int `json:"num_edges"`
	} `json:"graph"`
	Detect struct {
		PeelRounds uint64 `json:"peel_rounds"`
	} `json:"detect"`
}

// recorder accumulates one path's latencies and counts. Each worker owns a
// private slice (no lock on the hot path); merge() glues them for the final
// exact quantiles.
type recorder struct {
	requests atomic.Int64
	shed     atomic.Int64
	errors   atomic.Int64

	mu     sync.Mutex
	merged []time.Duration
}

func (r *recorder) donate(lat []time.Duration) {
	r.mu.Lock()
	r.merged = append(r.merged, lat...)
	r.mu.Unlock()
}

func (r *recorder) summarize() pathSummary {
	r.mu.Lock()
	lat := r.merged
	r.mu.Unlock()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) jsonMS {
		if len(lat) == 0 {
			return jsonMS(math.NaN())
		}
		i := int(p * float64(len(lat)-1))
		return jsonMS(float64(lat[i]) / float64(time.Millisecond))
	}
	maxMs := jsonMS(math.NaN())
	if len(lat) > 0 {
		maxMs = jsonMS(float64(lat[len(lat)-1]) / float64(time.Millisecond))
	}
	return pathSummary{
		Requests: r.requests.Load(),
		Shed429:  r.shed.Load(),
		Errors:   r.errors.Load(),
		P50Ms:    q(0.50),
		P99Ms:    q(0.99),
		P999Ms:   q(0.999),
		MaxMs:    maxMs,
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8080", "base URL of the ensemfdetd under test")
		duration  = flag.Duration("duration", 60*time.Second, "soak length")
		users     = flag.Int64("users", 1_000_000, "distinct user id space (sequential coverage)")
		merchants = flag.Int64("merchants", 100_000, "merchant id space")
		workers   = flag.Int("ingest-workers", 8, "concurrent ingest workers")
		batch     = flag.Int("batch", 256, "edges per ingest batch")
		detectEv  = flag.Duration("detect-every", 500*time.Millisecond, "detect cadence (0 = no detects)")
		detectN   = flag.Int("detect-n", 16, "detect: ensemble size")
		detectS   = flag.Float64("detect-s", 0.1, "detect: sample ratio")
		sampler   = flag.String("sampler", "", "detect: sampler name (empty = daemon default)")
		seed      = flag.Int64("seed", 1, "detect: ensemble seed")
		out       = flag.String("out", "", "write the JSON summary to this file instead of stdout")
		benchRows = flag.Bool("bench", false, "also print go-bench-formatted result lines on stdout")
	)
	flag.Parse()
	if *users <= 0 || *merchants <= 0 || *batch <= 0 || *workers <= 0 {
		return fmt.Errorf("-users, -merchants, -batch and -ingest-workers must be positive")
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()

	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        *workers + 4,
			MaxIdleConnsPerHost: *workers + 4,
		},
		Timeout: 2 * time.Minute,
	}

	var (
		seq       atomic.Int64 // global edge sequence: user id = seq mod -users
		edgesSent atomic.Int64
		ingestRec recorder
		detectRec recorder
	)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lat := make([]time.Duration, 0, 1<<14)
			defer func() { ingestRec.donate(lat) }()
			body := make([]byte, 0, 16**batch)
			for ctx.Err() == nil {
				base := seq.Add(int64(*batch)) - int64(*batch)
				body = appendBatch(body[:0], base, int64(*batch), *users, *merchants)
				d, status, err := post(ctx, client, *addr+"/v1/edges", body)
				if err != nil {
					if ctx.Err() == nil {
						ingestRec.errors.Add(1)
					}
					continue
				}
				ingestRec.requests.Add(1)
				lat = append(lat, d)
				switch {
				case status == http.StatusTooManyRequests:
					ingestRec.shed.Add(1)
					sleep(ctx, time.Second) // honor the Retry-After contract
				case status >= 500:
					ingestRec.errors.Add(1)
				default:
					edgesSent.Add(int64(*batch))
				}
			}
		}()
	}

	if *detectEv > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lat := make([]time.Duration, 0, 1024)
			defer func() { detectRec.donate(lat) }()
			t := time.NewTicker(*detectEv)
			defer t.Stop()
			req := fmt.Sprintf(`{"n":%d,"s":%g,"sampler":%q,"seed":%d}`, *detectN, *detectS, *sampler, *seed)
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
				}
				d, status, err := post(ctx, client, *addr+"/v1/detect", []byte(req))
				if err != nil {
					if ctx.Err() == nil {
						detectRec.errors.Add(1)
					}
					continue
				}
				detectRec.requests.Add(1)
				lat = append(lat, d)
				if status >= 500 {
					detectRec.errors.Add(1)
				}
			}
		}()
	}

	wg.Wait()
	elapsed := time.Since(start)

	sum := summary{
		DurationSeconds: elapsed.Seconds(),
		Users:           *users,
		Ingest:          ingestRec.summarize(),
		Detect:          detectRec.summarize(),
		EdgesSent:       edgesSent.Load(),
	}
	sum.EdgesPerSecond = float64(sum.EdgesSent) / elapsed.Seconds()
	if n := seq.Load(); n < *users {
		sum.DistinctUsers = n
	} else {
		sum.DistinctUsers = *users
	}
	sum.FinalStats = fetchStats(client, *addr)

	enc, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	if *out != "" {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			return err
		}
	} else {
		fmt.Println(string(enc))
	}
	if *benchRows {
		printBenchRows(sum)
	}
	return nil
}

// appendBatch builds the /v1/edges JSON body for edges base..base+n-1 of the
// global sequence. User ids walk the id space sequentially (mod users), so
// coverage of distinct users is exact; merchant ids are a Fibonacci-hash
// spread of the sequence number.
func appendBatch(b []byte, base, n, users, merchants int64) []byte {
	b = append(b, `{"edges":[`...)
	for i := int64(0); i < n; i++ {
		if i > 0 {
			b = append(b, ',')
		}
		s := base + i
		u := s % users
		v := (uint64(s) * 0x9E3779B97F4A7C15) % uint64(merchants)
		b = append(b, '[')
		b = strconv.AppendInt(b, u, 10)
		b = append(b, ',')
		b = strconv.AppendUint(b, uint64(v), 10)
		b = append(b, ']')
	}
	return append(b, `]}`...)
}

func post(ctx context.Context, client *http.Client, url string, body []byte) (time.Duration, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := client.Do(req)
	d := time.Since(start)
	if err != nil {
		return d, 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return d, resp.StatusCode, nil
}

func sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// fetchStats grabs the daemon's own counters after the soak; nil on any
// failure — the report is still useful without the cross-check.
func fetchStats(client *http.Client, addr string) *daemonStats {
	resp, err := client.Get(addr + "/v1/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var st daemonStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil
	}
	return &st
}

// printBenchRows renders the headline quantiles as go-bench lines so soak
// results land in BENCH_*.json baselines and diff with benchstat.
func printBenchRows(sum summary) {
	row := func(name string, ms jsonMS) {
		f := float64(ms)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return
		}
		fmt.Printf("BenchmarkSoak%s 1 %d ns/op\n", name, int64(f*float64(time.Millisecond)))
	}
	row("IngestP50", sum.Ingest.P50Ms)
	row("IngestP99", sum.Ingest.P99Ms)
	row("IngestP999", sum.Ingest.P999Ms)
	row("DetectP50", sum.Detect.P50Ms)
	row("DetectP99", sum.Detect.P99Ms)
	row("DetectP999", sum.Detect.P999Ms)
	fmt.Printf("BenchmarkSoakIngestThroughput 1 %.0f edges/s\n", sum.EdgesPerSecond)
}
