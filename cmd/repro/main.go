// Command repro regenerates the paper's evaluation: every table and figure
// of §V, rendered as text tables and ASCII plots over the synthetic Table I
// analogue datasets.
//
// Usage:
//
//	repro                  # run everything at the default scale
//	repro -exp fig3        # one experiment
//	repro -scale 0.05 -N 80 -seed 7
//
// Experiment ids: table1 table3 fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ensemfdet/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run() error {
	def := experiments.Default()
	var (
		exp      = flag.String("exp", "all", "experiment id or 'all' ("+strings.Join(experiments.Names(), " ")+")")
		scale    = flag.Float64("scale", def.Graph, "graph scale as a fraction of Table I sizes")
		n        = flag.Int("N", def.N, "ensemble size N")
		tMax     = flag.Int("tmax", def.TMax, "vote-threshold sweep bound for fig9")
		fraudarK = flag.Int("fraudar-k", def.FraudarK, "FRAUDAR block count K")
		rank     = flag.Int("rank", def.SpectralRank, "SVD components for SPOKEN/FBOX")
		seed     = flag.Int64("seed", def.Seed, "random seed")
		parallel = flag.Int("parallel", 0, "ensemble worker pool size (default GOMAXPROCS)")
	)
	flag.Parse()

	env := experiments.NewEnv(experiments.Scale{
		Graph:        *scale,
		N:            *n,
		TMax:         *tMax,
		FraudarK:     *fraudarK,
		SpectralRank: *rank,
		Seed:         *seed,
		Parallelism:  *parallel,
	})

	if *exp == "all" {
		return experiments.RunAll(env, os.Stdout)
	}
	runner, err := experiments.Lookup(*exp)
	if err != nil {
		return err
	}
	rep, err := runner(env)
	if err != nil {
		return err
	}
	return rep.Render(os.Stdout)
}
