// Command ensemfdet runs ENSEMFDET fraud detection on a bipartite edge-list
// file and prints (or writes) the detected fraud users and merchants.
//
// Usage:
//
//	ensemfdet -input transactions.tsv -T 40 [-N 80] [-S 0.1] [-sampler RES]
//
// The input is one purchase per line: "user_id<TAB>merchant_id" (dense
// non-negative integer ids; '#' comments and blank lines ignored). Output is
// one detected node per line: "u <id> <votes>" / "m <id> <votes>", sorted by
// vote count descending.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"ensemfdet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ensemfdet:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		input    = flag.String("input", "", "edge-list file (required)")
		output   = flag.String("output", "", "output file (default stdout)")
		n        = flag.Int("N", 80, "number of sampled subgraphs")
		s        = flag.Float64("S", 0.1, "sample ratio in (0,1]")
		T        = flag.Int("T", -1, "vote threshold; negative means N/2, 0 clamps to 1")
		sampler  = flag.String("sampler", "RES", "sampling method: RES, ONS-user, ONS-merchant, TNS")
		seed     = flag.Int64("seed", 1, "random seed")
		fixedK   = flag.Int("fix-k", 0, "disable auto-truncation; detect exactly K blocks per sample")
		parallel = flag.Int("parallel", 0, "worker pool size (default GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "log progress to stderr")
	)
	flag.Parse()
	if *input == "" {
		flag.Usage()
		return fmt.Errorf("-input is required")
	}
	if *T < 0 {
		*T = *n / 2
	}
	// Clamp to the minimum meaningful threshold so the header reports the
	// value actually applied (vote aggregation requires at least one vote).
	if *T < 1 {
		*T = 1
	}

	// Validate the sampler name and S range before touching the input, so a
	// typo'd flag fails instantly instead of after parsing a huge file.
	det, err := ensemfdet.NewDetector(ensemfdet.Config{
		Sampler:     ensemfdet.SamplerKind(*sampler),
		NumSamples:  *n,
		SampleRatio: *s,
		Seed:        *seed,
		FixedK:      *fixedK,
		Parallelism: *parallel,
	})
	if err != nil {
		return err
	}

	g, err := ensemfdet.ReadGraphFile(*input)
	if err != nil {
		return err
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "loaded %d users, %d merchants, %d edges\n",
			g.NumUsers(), g.NumMerchants(), g.NumEdges())
	}

	start := time.Now()
	votes, err := det.Votes(g)
	if err != nil {
		return err
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "ensemble of %d samples finished in %v\n", *n, time.Since(start).Round(time.Millisecond))
	}

	out := os.Stdout
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	defer w.Flush()

	type hit struct {
		kind  byte
		id    uint32
		votes int
	}
	var hits []hit
	for _, u := range votes.AcceptUsers(*T) {
		hits = append(hits, hit{'u', u, votes.User[u]})
	}
	for _, v := range votes.AcceptMerchants(*T) {
		hits = append(hits, hit{'m', v, votes.Merchant[v]})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].votes != hits[j].votes {
			return hits[i].votes > hits[j].votes
		}
		if hits[i].kind != hits[j].kind {
			return hits[i].kind < hits[j].kind
		}
		return hits[i].id < hits[j].id
	})
	fmt.Fprintf(w, "# EnsemFDet N=%d S=%g T=%d sampler=%s seed=%d\n", *n, *s, *T, *sampler, *seed)
	fmt.Fprintf(w, "# detected %d users, %d merchants\n",
		len(votes.AcceptUsers(*T)), len(votes.AcceptMerchants(*T)))
	for _, h := range hits {
		fmt.Fprintf(w, "%c\t%d\t%d\n", h.kind, h.id, h.votes)
	}
	return nil
}
