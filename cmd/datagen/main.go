// Command datagen synthesizes "who buy-from where" transaction graphs with
// planted fraud, mirroring the paper's Table I datasets at a configurable
// scale (see DESIGN.md for the substitution rationale). It writes the edge
// list and the blacklist ground truth.
//
// Usage:
//
//	datagen -dataset 1 -scale 0.02 -out d1.tsv -blacklist d1.blacklist
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/datagen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataset   = flag.Int("dataset", 1, "Table I dataset preset: 1, 2 or 3")
		scale     = flag.Float64("scale", 0.02, "fraction of the paper's node/edge counts, in (0,1]")
		seed      = flag.Int64("seed", 7, "random seed")
		out       = flag.String("out", "", "edge-list output file (required)")
		blacklist = flag.String("blacklist", "", "blacklist output file (one fraud user id per line)")
		truth     = flag.String("truth", "", "optional noise-free planted-fraud output file")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		return fmt.Errorf("-out is required")
	}

	ds, err := datagen.GeneratePreset(datagen.PresetID(*dataset), *scale, *seed)
	if err != nil {
		return err
	}
	st := ds.Stats()
	fmt.Fprintf(os.Stderr, "%s: %d users (%d blacklisted), %d merchants, %d edges\n",
		st.Name, st.Users, st.FraudPINs, st.Merchants, st.Edges)

	if err := writeGraph(*out, ds.Graph); err != nil {
		return err
	}
	if *blacklist != "" {
		ids := make([]uint32, 0, ds.Labels.NumFraud)
		for u, f := range ds.Labels.Fraud {
			if f {
				ids = append(ids, uint32(u))
			}
		}
		if err := writeIDs(*blacklist, ids); err != nil {
			return err
		}
	}
	if *truth != "" {
		if err := writeIDs(*truth, ds.TrueFraudUsers); err != nil {
			return err
		}
	}
	return nil
}

func writeGraph(path string, g *bipartite.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return bipartite.WriteEdgeList(f, g)
}

func writeIDs(path string, ids []uint32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, id := range ids {
		fmt.Fprintln(w, id)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return nil
}
