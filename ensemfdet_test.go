package ensemfdet

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testGraph plants one dense fraud block in random background traffic.
func testGraph(t *testing.T) (*Graph, map[uint32]bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	b := NewGraphBuilder()
	for i := 0; i < 2000; i++ {
		b.AddEdge(uint32(rng.Intn(800)), uint32(rng.Intn(800)))
	}
	fraud := make(map[uint32]bool)
	for u := 0; u < 30; u++ {
		id := uint32(800 + u)
		fraud[id] = true
		for v := 0; v < 15; v++ {
			b.AddEdge(id, uint32(800+v))
		}
	}
	return b.Build(), fraud
}

func TestDetectEndToEnd(t *testing.T) {
	g, fraud := testGraph(t)
	det, err := NewDetector(Config{NumSamples: 16, SampleRatio: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Fraud users have degree 15 so they are present (and detected) in
	// nearly every S=0.3 sample; a 75% vote threshold isolates them while
	// background blobs, detected inconsistently, fall away.
	res, err := det.Detect(g, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threshold != 12 || res.NumSamples != 16 {
		t.Errorf("result metadata wrong: %+v", res)
	}
	hits := 0
	for _, u := range res.Users {
		if fraud[u] {
			hits++
		}
	}
	if hits < len(fraud)*8/10 {
		t.Errorf("detected %d/%d planted fraud users (|det|=%d)", hits, len(fraud), len(res.Users))
	}
	if len(res.Users) > 5*len(fraud) {
		t.Errorf("too many detections at 75%% votes: %d", len(res.Users))
	}
}

func TestVotesReusableAcrossThresholds(t *testing.T) {
	g, _ := testGraph(t)
	det, err := NewDetector(Config{NumSamples: 12, SampleRatio: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	votes, err := det.Votes(g)
	if err != nil {
		t.Fatal(err)
	}
	prev := len(votes.AcceptUsers(1))
	for T := 2; T <= 12; T++ {
		cur := len(votes.AcceptUsers(T))
		if cur > prev {
			t.Fatalf("accept set grew with T at %d", T)
		}
		prev = cur
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewDetector(Config{Sampler: "bogus"}); err == nil {
		t.Error("bogus sampler accepted")
	}
	if _, err := NewDetector(Config{SampleRatio: 2}); err == nil {
		t.Error("S=2 accepted")
	}
	if _, err := NewDetector(Config{SampleRatio: -0.5}); err == nil {
		t.Error("S=-0.5 accepted")
	}
	if _, err := NewDetector(Config{SampleRatio: math.NaN()}); err == nil {
		t.Error("S=NaN accepted")
	}
	for _, k := range []SamplerKind{RandomEdgeSampling, UserNodeSampling, MerchantNodeSampling, TwoSideNodeSampling} {
		if _, err := NewDetector(Config{Sampler: k}); err != nil {
			t.Errorf("sampler %q rejected: %v", k, err)
		}
	}
}

func TestRepetitionRate(t *testing.T) {
	if got := (Config{NumSamples: 80, SampleRatio: 0.1}).RepetitionRate(); got != 8.0 {
		t.Errorf("R = %g, want 8", got)
	}
	// Zero config uses the paper defaults N=80, S=0.1.
	if got := (Config{}).RepetitionRate(); got != 8.0 {
		t.Errorf("default R = %g, want 8", got)
	}
}

func TestDetectBlocks(t *testing.T) {
	g, fraud := testGraph(t)
	blocks := DetectBlocks(g, Config{})
	if len(blocks) == 0 {
		t.Fatal("no blocks")
	}
	found := 0
	for _, blk := range blocks {
		for _, u := range blk.Users {
			if fraud[u] {
				found++
			}
		}
	}
	if found < len(fraud)/2 {
		t.Errorf("blocks contain %d/%d planted users", found, len(fraud))
	}
	// FixedK mode returns exactly K blocks when available.
	fixed := DetectBlocks(g, Config{FixedK: 3})
	if len(fixed) != 3 {
		t.Errorf("FixedK=3 returned %d blocks", len(fixed))
	}
}

func TestDensityScoreMetrics(t *testing.T) {
	g, _ := testGraph(t)
	weighted := DensityScore(g, Config{})
	unweighted := DensityScore(g, Config{UseAvgDegreeMetric: true})
	if weighted <= 0 || unweighted <= 0 {
		t.Errorf("scores must be positive: %g, %g", weighted, unweighted)
	}
	if weighted >= unweighted {
		t.Errorf("column weighting must discount mass: weighted %g ≥ unweighted %g", weighted, unweighted)
	}
}

func TestGraphIO(t *testing.T) {
	g, _ := testGraph(t)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Errorf("round trip lost edges: %d vs %d", g2.NumEdges(), g.NumEdges())
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "g.tsv")
	var fileBuf bytes.Buffer
	if err := WriteGraph(&fileBuf, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fileBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	g3, err := ReadGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumEdges() != g.NumEdges() {
		t.Error("file round trip lost edges")
	}
	if _, err := ReadGraphFile(filepath.Join(dir, "missing.tsv")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadGraphRejectsGarbage(t *testing.T) {
	if _, err := ReadGraph(strings.NewReader("not an edge list")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestNewGraphDeclaredSizes(t *testing.T) {
	g, err := NewGraph(10, 5, []Edge{{U: 0, V: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumUsers() != 10 || g.NumMerchants() != 5 {
		t.Errorf("sizes = (%d,%d)", g.NumUsers(), g.NumMerchants())
	}
	if _, err := NewGraph(1, 1, []Edge{{U: 5, V: 0}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	g, _ := testGraph(t)
	det, _ := NewDetector(Config{NumSamples: 10, SampleRatio: 0.3, Seed: 11})
	a, err := det.Detect(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := det.Detect(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Users) != len(b.Users) {
		t.Fatalf("non-deterministic: %d vs %d users", len(a.Users), len(b.Users))
	}
	for i := range a.Users {
		if a.Users[i] != b.Users[i] {
			t.Fatal("non-deterministic user sets")
		}
	}
}
