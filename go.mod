module ensemfdet

go 1.24
