package ensemfdet_test

import (
	"bufio"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"ensemfdet"
	"ensemfdet/internal/datagen"
	"ensemfdet/internal/eval"
)

// TestFileBasedWorkflow exercises the full operational path a downstream
// user follows: synthesize a dataset, persist the graph and blacklist to
// disk, reload both, detect, and evaluate — the cmd/datagen + cmd/ensemfdet
// pipeline without process spawning.
func TestFileBasedWorkflow(t *testing.T) {
	ds, err := datagen.GeneratePreset(datagen.Dataset1, 0.005, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "graph.tsv")
	blPath := filepath.Join(dir, "blacklist.txt")

	gf, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ensemfdet.WriteGraph(gf, ds.Graph); err != nil {
		t.Fatal(err)
	}
	if err := gf.Close(); err != nil {
		t.Fatal(err)
	}

	bf, err := os.Create(blPath)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(bf)
	for u, fraud := range ds.Labels.Fraud {
		if fraud {
			if _, err := w.WriteString(strconv.Itoa(u) + "\n"); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bf.Close(); err != nil {
		t.Fatal(err)
	}

	// Reload.
	g, err := ensemfdet.ReadGraphFile(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != ds.Graph.NumEdges() {
		t.Fatalf("reload lost edges: %d vs %d", g.NumEdges(), ds.Graph.NumEdges())
	}
	var fraudIDs []uint32
	rf, err := os.Open(blPath)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(rf)
	for sc.Scan() {
		id, err := strconv.ParseUint(sc.Text(), 10, 32)
		if err != nil {
			t.Fatal(err)
		}
		fraudIDs = append(fraudIDs, uint32(id))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	rf.Close()
	labels := eval.NewLabels(g.NumUsers(), fraudIDs)
	if labels.NumFraud != ds.Labels.NumFraud {
		t.Fatalf("blacklist round trip: %d vs %d", labels.NumFraud, ds.Labels.NumFraud)
	}

	// Detect and evaluate: the planted rings must be recoverable at useful
	// precision from the reloaded artifacts.
	det, err := ensemfdet.NewDetector(ensemfdet.Config{NumSamples: 24, SampleRatio: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	votes, err := det.Votes(g)
	if err != nil {
		t.Fatal(err)
	}
	var best eval.Metrics
	for T := 1; T <= votes.NumSamples; T++ {
		if m := eval.Evaluate(labels, votes.AcceptUsers(T)); m.F1 > best.F1 {
			best = m
		}
	}
	if best.F1 < 0.3 {
		t.Errorf("end-to-end best F1 = %.3f, want ≥ 0.3 (%+v)", best.F1, best)
	}
}

// TestCrossSamplerAgreement verifies that all four samplers, run through the
// public API on the same planted dataset, agree on the strongest signal: the
// highest-voted users should be predominantly planted fraud for every
// sampler.
func TestCrossSamplerAgreement(t *testing.T) {
	ds, err := datagen.GeneratePreset(datagen.Dataset1, 0.005, 11)
	if err != nil {
		t.Fatal(err)
	}
	planted := make(map[uint32]bool)
	for _, u := range ds.TrueFraudUsers {
		planted[u] = true
	}
	// Minimum top-vote precision per sampler: the paper ranks PIN-side
	// sampling weakest (it only needs to beat the ~6% base rate here) and
	// RES strongest.
	wantPrecision := map[ensemfdet.SamplerKind]float64{
		ensemfdet.RandomEdgeSampling:   0.3, // ≈5× the ~6% base rate
		ensemfdet.MerchantNodeSampling: 0.3,
		ensemfdet.TwoSideNodeSampling:  0.3,
		ensemfdet.UserNodeSampling:     0.1,
	}
	for kind, want := range wantPrecision {
		det, err := ensemfdet.NewDetector(ensemfdet.Config{
			Sampler: kind, NumSamples: 24, SampleRatio: 0.2, Seed: 13,
		})
		if err != nil {
			t.Fatal(err)
		}
		votes, err := det.Votes(ds.Graph)
		if err != nil {
			t.Fatal(err)
		}
		// Find the highest threshold that still accepts ≥ 20 users.
		top := []uint32{}
		for T := votes.NumSamples; T >= 1; T-- {
			if us := votes.AcceptUsers(T); len(us) >= 20 {
				top = us
				break
			}
		}
		if len(top) == 0 {
			t.Errorf("%s: no threshold accepts ≥ 20 users", kind)
			continue
		}
		hits := 0
		for _, u := range top {
			if planted[u] {
				hits++
			}
		}
		if prec := float64(hits) / float64(len(top)); prec < want {
			t.Errorf("%s: top-vote precision vs planted rings = %.2f (%d/%d), want ≥ %.2f",
				kind, prec, hits, len(top), want)
		}
	}
}

// TestFixKAblationThroughPublicAPI checks the ENSEMFDET-FIX-K ablation is
// reachable from the facade and behaves: fixed K detects at least as many
// distinct users per run as auto-truncation (it never stops early).
func TestFixKAblationThroughPublicAPI(t *testing.T) {
	ds, err := datagen.GeneratePreset(datagen.Dataset1, 0.005, 17)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := ensemfdet.NewDetector(ensemfdet.Config{NumSamples: 12, SampleRatio: 0.1, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := ensemfdet.NewDetector(ensemfdet.Config{NumSamples: 12, SampleRatio: 0.1, Seed: 19, FixedK: 30})
	if err != nil {
		t.Fatal(err)
	}
	av, err := auto.Votes(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	fv, err := fixed.Votes(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if len(fv.AcceptUsers(1)) < len(av.AcceptUsers(1)) {
		t.Errorf("FIX-K=30 detected fewer users (%d) than auto-truncation (%d)",
			len(fv.AcceptUsers(1)), len(av.AcceptUsers(1)))
	}
}
